"""FIR filtering: direct form and polyphase decimators (paper Fig. 3).

Section 2.1 describes both forms: the plain FIR that computes every output
then throws ``D-1`` of ``D`` away, and the polyphase form that "writes the
input values to the correct registers at the input sample rate.  But it
reads, multiplies and calculates the sum only every D cycles for an output
sample" — a factor ``D`` fewer multiply-accumulates.

Implementations:

:class:`FIRFilter`
    Streaming direct-form FIR (no rate change), vectorised with
    ``scipy.signal.lfilter`` plus explicit state.

:class:`PolyphaseDecimator`
    Streaming decimating FIR in floating point.  Internally it buffers to a
    multiple of ``D`` and computes each output as a dot product of the
    history window — mathematically identical to filter-then-downsample,
    which the property tests assert against ``scipy``.

:class:`FixedPolyphaseDecimator`
    Bit-true integer model mirroring the FPGA's sequential MAC loop
    (Fig. 5): 12-bit samples x 12-bit coefficients accumulated in a 31-bit
    register, output truncated/saturated to 12 bits.  The FPGA RTL component
    in :mod:`repro.archs.fpga.rtl_fir` is verified against this model
    sample-for-sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as _signal

from ..errors import ConfigurationError
from ..fixedpoint import QFormat, fir_accumulator_bits, quantize, saturate
from ..fixedpoint.ops import Rounding


@dataclass
class FIRFilter:
    """Streaming direct-form FIR filter (rate preserving)."""

    taps: np.ndarray

    def __post_init__(self) -> None:
        self.taps = np.asarray(self.taps, dtype=np.float64)
        if self.taps.ndim != 1 or self.taps.size == 0:
            raise ConfigurationError("taps must be a non-empty 1-D array")
        self._zi = np.zeros(len(self.taps) - 1, dtype=np.complex128)

    def reset(self) -> None:
        """Clear the delay line."""
        self._zi = np.zeros(len(self.taps) - 1, dtype=np.complex128)

    def process(self, x: np.ndarray) -> np.ndarray:
        """Filter one block, carrying state across calls."""
        x = np.asarray(x)
        if x.size == 0:
            return np.empty(0, dtype=np.complex128)
        if len(self.taps) == 1:
            return self.taps[0] * x.astype(np.complex128)
        y, self._zi = _signal.lfilter(
            self.taps, [1.0], x.astype(np.complex128), zi=self._zi
        )
        return y


def polyphase_decompose(taps: np.ndarray, decimation: int) -> np.ndarray:
    """Split ``taps`` into ``decimation`` phases (rows), zero padded.

    Row ``p`` holds coefficients ``h[p], h[p+D], h[p+2D], ...`` — the
    sub-filter that multiplies input samples whose index is congruent to
    ``p`` modulo ``D``.  This is the register-bank organisation of the
    paper's Fig. 3 "decimator/control writes the values to the correct
    registers".
    """
    taps = np.asarray(taps, dtype=np.float64)
    if decimation < 1:
        raise ConfigurationError(f"decimation must be >= 1, got {decimation}")
    n_phases = decimation
    padded_len = -(-len(taps) // n_phases) * n_phases
    padded = np.zeros(padded_len, dtype=np.float64)
    padded[: len(taps)] = taps
    return padded.reshape(-1, n_phases).T.copy()


@dataclass
class PolyphaseDecimator:
    """Streaming decimate-by-``D`` FIR, floating point.

    Output ``y[m] = sum_k h[k] * x[m*D - k]`` — identical to filtering with
    ``h`` and keeping every ``D``-th sample starting at index 0 (sample
    indices 0, D, 2D, ... of the full-rate convolution), matching the CIC
    decimator convention.
    """

    taps: np.ndarray
    decimation: int

    def __post_init__(self) -> None:
        self.taps = np.asarray(self.taps, dtype=np.float64)
        if self.taps.ndim != 1 or self.taps.size == 0:
            raise ConfigurationError("taps must be a non-empty 1-D array")
        if not isinstance(self.decimation, int) or self.decimation < 1:
            raise ConfigurationError(
                f"decimation must be a positive int, got {self.decimation!r}"
            )
        self.reset()

    def reset(self) -> None:
        """Clear history and phase."""
        # History holds the last len(taps)-1 input samples.
        self._hist = np.zeros(len(self.taps) - 1, dtype=np.complex128)
        self._offset = 0  # global index of next input sample, mod D

    def process(self, x: np.ndarray) -> np.ndarray:
        """Filter + decimate one block; state carries across calls."""
        x = np.asarray(x).astype(np.complex128)
        if x.ndim != 1:
            raise ConfigurationError("input must be one-dimensional")
        if x.size == 0:
            return np.empty(0, dtype=np.complex128)

        buf = np.concatenate([self._hist, x])
        hist_len = len(self._hist)
        # Global indices covered by this block: offset .. offset+len(x)-1.
        # Outputs are produced at global indices that are multiples of D.
        first_out = (-self._offset) % self.decimation
        out_positions = np.arange(first_out, len(x), self.decimation)
        n_taps = len(self.taps)
        if out_positions.size:
            # Window for output at local position p covers buf[p .. p+hist_len]
            # reversed against taps.
            idx = out_positions[:, None] + hist_len - np.arange(n_taps)[None, :]
            # Some indices may be negative only if hist shorter than taps-1,
            # which reset() prevents.
            windows = buf[idx]
            y = windows @ self.taps.astype(np.complex128)
        else:
            y = np.empty(0, dtype=np.complex128)

        self._offset = (self._offset + len(x)) % self.decimation
        if n_taps > 1:
            self._hist = buf[len(buf) - (n_taps - 1) :].copy()
        else:
            self._hist = np.empty(0, dtype=np.complex128)
        return y


@dataclass
class FixedPolyphaseDecimator:
    """Bit-true sequential polyphase FIR matching the FPGA datapath (Fig. 5).

    Parameters
    ----------
    taps_raw:
        Integer coefficients, must fit ``coeff_width`` bits.
    decimation:
        Rate change ``D`` (8 in the reference chain).
    data_width:
        Input/output sample width (12 in the paper).
    coeff_width:
        Coefficient ROM width (12 in the paper).
    acc_width:
        Accumulator width; defaults to the no-overflow bound
        (31 bits for 12x12x124, exactly the paper's intermediate result).
    output_shift:
        LSBs dropped when quantising the accumulator to the output.  The
        paper takes "the 11 least significant bits ... and a sign bit" of
        the 31-bit intermediate result, i.e. the coefficients are scaled so
        the useful signal sits in the low bits; we default to dropping
        ``coeff_width - 1`` bits, which undoes unit-gain Q11 coefficient
        scaling.  Saturation clamps like the paper's output stage.
    """

    taps_raw: np.ndarray
    decimation: int
    data_width: int = 12
    coeff_width: int = 12
    acc_width: int | None = None
    output_shift: int | None = None

    def __post_init__(self) -> None:
        self.taps_raw = np.asarray(self.taps_raw)
        if not np.issubdtype(self.taps_raw.dtype, np.integer):
            raise ConfigurationError("taps_raw must be integers")
        self.taps_raw = self.taps_raw.astype(np.int64)
        if self.taps_raw.ndim != 1 or self.taps_raw.size == 0:
            raise ConfigurationError("taps_raw must be a non-empty 1-D array")
        if not isinstance(self.decimation, int) or self.decimation < 1:
            raise ConfigurationError("decimation must be a positive int")
        cfmt = QFormat(self.coeff_width, 0)
        if int(self.taps_raw.max()) > cfmt.max_raw or int(self.taps_raw.min()) < cfmt.min_raw:
            raise ConfigurationError(
                f"coefficients exceed {self.coeff_width}-bit range"
            )
        bound = fir_accumulator_bits(
            self.data_width, self.coeff_width, len(self.taps_raw)
        )
        if self.acc_width is None:
            self.acc_width = bound
        if self.acc_width > 62:
            raise ConfigurationError("accumulator width exceeds int64-safe range")
        if self.output_shift is None:
            self.output_shift = self.coeff_width - 1
        if self.output_shift < 0:
            raise ConfigurationError("output_shift must be >= 0")
        # Reversed taps, cached for the fused/jit kernels' ascending
        # strided windows (ascending window . reversed taps == the
        # oracle's descending window . taps).
        self._taps_rev = self.taps_raw[::-1].copy()
        self.reset()

    @property
    def accumulator_format(self) -> QFormat:
        """Format of the MAC accumulator (the 31-bit bus of Fig. 5)."""
        assert self.acc_width is not None
        return QFormat(self.acc_width, 0)

    @property
    def output_format(self) -> QFormat:
        """Format of the quantised output (12-bit in the paper)."""
        return QFormat(self.data_width, 0)

    def reset(self) -> None:
        """Clear the sample RAM model and phase."""
        self._hist = np.zeros(len(self.taps_raw) - 1, dtype=np.int64)
        self._offset = 0

    def process(self, x: np.ndarray, engine: str | None = None) -> np.ndarray:
        """Filter + decimate raw integer samples, bit-true.

        ``engine`` selects the kernel tier (``python``/``fused``/``jit``;
        ``None`` = the ``REPRO_KERNELS`` default).  All tiers are
        bit-identical in outputs and carried state.
        """
        from ..kernels import dispatch as _dispatch

        tier = _dispatch.resolve("fir", engine)
        if tier != "python":
            return _dispatch.kernel("fir", tier)(self, x)
        return self._process_python(x)

    def _process_python(self, x: np.ndarray) -> np.ndarray:
        """The oracle tier: fancy-indexed window gather + matmul."""
        x = np.asarray(x)
        if not np.issubdtype(x.dtype, np.integer):
            raise ConfigurationError("input must be integer raw values")
        x = x.astype(np.int64, copy=False)
        if x.size == 0:
            return np.empty(0, dtype=np.int64)
        dfmt = QFormat(self.data_width, 0)
        if int(x.max()) > dfmt.max_raw or int(x.min()) < dfmt.min_raw:
            raise ConfigurationError(f"input sample out of {dfmt} range")

        buf = np.concatenate([self._hist, x])
        hist_len = len(self._hist)
        first_out = (-self._offset) % self.decimation
        out_positions = np.arange(first_out, len(x), self.decimation)
        n_taps = len(self.taps_raw)
        if out_positions.size:
            idx = out_positions[:, None] + hist_len - np.arange(n_taps)[None, :]
            windows = buf[idx]
            acc = windows @ self.taps_raw
            # The accumulator physically cannot overflow at the default
            # width; saturate anyway so narrower ablation widths behave
            # like saturating hardware rather than corrupting silently.
            acc = saturate(acc, self.accumulator_format)
            y = quantize(acc, self.output_shift, Rounding.TRUNCATE)
            y = saturate(y, self.output_format)
        else:
            y = np.empty(0, dtype=np.int64)

        self._offset = (self._offset + len(x)) % self.decimation
        if n_taps > 1:
            tail = buf[len(buf) - (n_taps - 1) :]
            # buf is private (np.concatenate always allocates), so the tail
            # view is safe to keep; copy only when holding it would pin a
            # much larger block than the history itself.
            self._hist = tail if len(buf) <= 4 * (n_taps - 1) else tail.copy()
        else:
            self._hist = np.empty(0, dtype=np.int64)
        return y

    def mac_ops_per_output(self) -> int:
        """Multiply-accumulate operations per output sample (= tap count).

        The sequential FPGA implementation spends one clock per MAC; for
        124 taps this is the "125 clock cycles" figure of Section 5.2.1
        (124 MACs + 1 output cycle).
        """
        return len(self.taps_raw)
