"""Signal-quality metrics: SNR, SFDR, SINAD, ENOB, ripple, rejection.

These are the measurements behind the reproduction's quality claims (e.g.
"the fixed-point DDC output is within X dB of the gold model", the NCO SFDR
ablation, and the alias-rejection comparison between the reference chain and
the GC4016-style chain).
"""

from __future__ import annotations

import numpy as np
from scipy.signal import windows as _windows

from ..errors import ConfigurationError


def _spectrum(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Windowed power spectrum; returns (bin frequencies normalised, power).

    A 4-term Blackman-Harris window (-92 dB sidelobes) keeps the window's
    own leakage below the quantisation spurs these metrics measure.
    """
    x = np.asarray(x)
    if x.size < 8:
        raise ConfigurationError("need at least 8 samples for spectral metrics")
    w = _windows.blackmanharris(len(x))
    xw = x * w
    spec = np.fft.rfft(xw) if not np.iscomplexobj(x) else np.fft.fft(xw)
    power = np.abs(spec) ** 2
    freqs = (
        np.fft.rfftfreq(len(x)) if not np.iscomplexobj(x) else np.fft.fftfreq(len(x))
    )
    return freqs, power


def _tone_bin(power: np.ndarray) -> int:
    """Index of the strongest non-DC bin."""
    p = power.copy()
    # Suppress DC leakage (first couple of bins for the Hann window).
    p[:3] = 0.0
    if len(p) > 3:
        p[-2:] = 0.0 if np.isrealobj(p) else p[-2:]
    return int(np.argmax(p))


def _band(idx: int, n: int, half_width: int = 8) -> slice:
    return slice(max(0, idx - half_width), min(n, idx + half_width + 1))


def tone_power_db(x: np.ndarray, rel: bool = False) -> float:
    """Power of the dominant tone in dB (absolute, or relative to total)."""
    _, power = _spectrum(x)
    k = _tone_bin(power)
    tone = power[_band(k, len(power))].sum()
    if rel:
        total = power.sum()
        return 10 * np.log10(tone / total) if total > 0 else -np.inf
    return 10 * np.log10(tone) if tone > 0 else -np.inf


def snr_db(x: np.ndarray, signal_bins: int = 8) -> float:
    """SNR of a single-tone signal: tone power over everything else.

    Harmonics are *included* in the noise (use :func:`sinad_db` alias) —
    for our quantisation studies that is the quantity of interest.
    """
    freqs, power = _spectrum(x)
    k = _tone_bin(power)
    band = _band(k, len(power), signal_bins)
    sig = power[band].sum()
    noise = power.sum() - sig - power[:3].sum()
    if noise <= 0:
        return np.inf
    return 10 * np.log10(sig / noise)


def sinad_db(x: np.ndarray) -> float:
    """Signal over noise-and-distortion; same computation as :func:`snr_db`."""
    return snr_db(x)


def enob(x: np.ndarray) -> float:
    """Effective number of bits from SINAD: ``(SINAD - 1.76) / 6.02``."""
    s = sinad_db(x)
    if not np.isfinite(s):
        return np.inf
    return (s - 1.76) / 6.02


def sfdr_db(x: np.ndarray) -> float:
    """Spurious-free dynamic range: carrier over the largest spur."""
    _, power = _spectrum(x)
    k = _tone_bin(power)
    carrier_band = _band(k, len(power))
    carrier = power[carrier_band].sum()
    rest = power.copy()
    rest[carrier_band] = 0.0
    rest[:3] = 0.0
    spur = rest.max()
    if spur <= 0:
        return np.inf
    return 10 * np.log10(carrier / spur)


def passband_ripple_db(
    response: np.ndarray, freqs_hz: np.ndarray, passband_hz: float
) -> float:
    """Peak-to-peak magnitude ripple inside ``|f| <= passband_hz``, in dB."""
    freqs = np.asarray(freqs_hz, dtype=np.float64)
    mag = np.abs(np.asarray(response))
    mask = np.abs(freqs) <= passband_hz
    if not mask.any():
        raise ConfigurationError("no response samples inside the passband")
    band = mag[mask]
    if band.min() <= 0:
        return np.inf
    return 20 * np.log10(band.max() / band.min())


def stopband_attenuation_db(
    response: np.ndarray, freqs_hz: np.ndarray, stopband_start_hz: float
) -> float:
    """Minimum attenuation beyond ``stopband_start_hz`` relative to DC gain."""
    freqs = np.asarray(freqs_hz, dtype=np.float64)
    mag = np.abs(np.asarray(response))
    mask = np.abs(freqs) >= stopband_start_hz
    if not mask.any():
        raise ConfigurationError("no response samples inside the stopband")
    ref = mag[np.argmin(np.abs(freqs))]
    if ref <= 0:
        raise ConfigurationError("zero DC gain")
    worst = mag[mask].max()
    if worst <= 0:
        return np.inf
    return 20 * np.log10(ref / worst)


def rms_error(a: np.ndarray, b: np.ndarray) -> float:
    """Root-mean-square difference between two equal-length signals."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ConfigurationError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(np.abs(a - b) ** 2)))
