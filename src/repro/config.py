"""Reference DDC configuration from Section 2 of the paper.

The paper fixes one DDC configuration — selecting a DRM (Digital Radio
Mondiale) band — and uses it to compare all five architectures.  Table 1 of
the paper defines it:

==========  =================  ==============
Component   Clock/sample rate  Decimation (D)
==========  =================  ==============
NCO         64.512 MHz         --
CIC2        64.512 MHz         16
CIC5        4.032 MHz          21
125-tap FIR 192 kHz            8
Output      24 kHz             --
==========  =================  ==============

This module encodes those constants once; every architecture model and every
reproduced table derives from :data:`REFERENCE_DDC` rather than repeating
magic numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ConfigurationError

#: Input sample rate of the reference DDC in Hz (64.512 MHz).
INPUT_RATE_HZ: float = 64_512_000.0

#: Output sample rate of the reference DDC in Hz (24 kHz).
OUTPUT_RATE_HZ: float = 24_000.0

#: Decimation of the first (2-stage) CIC filter.
CIC2_DECIMATION: int = 16

#: Decimation of the second (5-stage) CIC filter.
CIC5_DECIMATION: int = 21

#: Decimation of the final polyphase FIR filter.
FIR_DECIMATION: int = 8

#: Number of taps of the final FIR filter as specified in the paper.
FIR_TAPS: int = 125

#: The FPGA implementation uses 124 taps "to make the sequential filter run a
#: little more efficiently" (Section 5.2.1).
FIR_TAPS_FPGA: int = 124

#: Total decimation of the chain: 16 * 21 * 8 = 2688.
TOTAL_DECIMATION: int = CIC2_DECIMATION * CIC5_DECIMATION * FIR_DECIMATION

#: Data-path width used by the FPGA implementation (12-bit buses).
DATA_WIDTH_BITS: int = 12

#: Clock cycles available to compute one FIR output sample on the FPGA
#: (192 ksps input to the FIR, decimation 8, logic clocked at 64.512 MHz).
FPGA_CYCLES_PER_FIR_OUTPUT: int = 2688


@dataclass(frozen=True)
class StageConfig:
    """Configuration of one stage in the DDC chain.

    Parameters
    ----------
    name:
        Human-readable stage name as used in the paper's Table 1.
    input_rate_hz:
        Sample rate at the stage input.
    decimation:
        Integer decimation performed by the stage (1 for the NCO/mixer).
    order:
        Filter order: number of integrator/comb stage pairs for a CIC,
        number of taps for a FIR, 0 for the NCO.
    """

    name: str
    input_rate_hz: float
    decimation: int
    order: int = 0

    def __post_init__(self) -> None:
        if self.decimation < 1:
            raise ConfigurationError(
                f"stage {self.name!r}: decimation must be >= 1, "
                f"got {self.decimation}"
            )
        if self.input_rate_hz <= 0:
            raise ConfigurationError(
                f"stage {self.name!r}: input rate must be positive, "
                f"got {self.input_rate_hz}"
            )

    @property
    def output_rate_hz(self) -> float:
        """Sample rate at the stage output."""
        return self.input_rate_hz / self.decimation


@dataclass(frozen=True)
class DDCConfig:
    """Complete configuration of a three-stage DDC chain.

    The defaults reproduce the paper's reference configuration (Table 1).
    Alternative configurations (e.g. the GC4016 GSM example of Section 3.1.2)
    are expressed with the same dataclass.
    """

    input_rate_hz: float = INPUT_RATE_HZ
    cic2_decimation: int = CIC2_DECIMATION
    cic5_decimation: int = CIC5_DECIMATION
    fir_decimation: int = FIR_DECIMATION
    fir_taps: int = FIR_TAPS
    data_width: int = DATA_WIDTH_BITS
    cic2_order: int = 2
    cic5_order: int = 5
    #: Mixing frequency of the NCO in Hz.  The DRM band of interest is not
    #: specified numerically in the paper; any frequency below Nyquist works.
    nco_frequency_hz: float = 10_000_000.0

    def __post_init__(self) -> None:
        for label, value in (
            ("cic2_decimation", self.cic2_decimation),
            ("cic5_decimation", self.cic5_decimation),
            ("fir_decimation", self.fir_decimation),
            ("fir_taps", self.fir_taps),
            ("data_width", self.data_width),
        ):
            if not isinstance(value, int) or value < 1:
                raise ConfigurationError(
                    f"{label} must be a positive integer, got {value!r}"
                )
        for label, value in (
            ("cic2_order", self.cic2_order),
            ("cic5_order", self.cic5_order),
        ):
            if not isinstance(value, int) or value < 0:
                raise ConfigurationError(
                    f"{label} must be a non-negative integer, got {value!r}"
                )
        if self.input_rate_hz <= 0:
            raise ConfigurationError(
                f"input_rate_hz must be positive, got {self.input_rate_hz}"
            )
        if abs(self.nco_frequency_hz) > self.input_rate_hz / 2:
            raise ConfigurationError(
                "nco_frequency_hz must lie below the input Nyquist rate"
            )

    @property
    def total_decimation(self) -> int:
        """Product of the three stage decimations (2688 for the reference)."""
        return self.cic2_decimation * self.cic5_decimation * self.fir_decimation

    @property
    def output_rate_hz(self) -> float:
        """Output sample rate (24 kHz for the reference configuration)."""
        return self.input_rate_hz / self.total_decimation

    def stages(self) -> tuple[StageConfig, ...]:
        """The chain as a tuple of :class:`StageConfig`, Table 1 order."""
        rate = self.input_rate_hz
        nco = StageConfig("NCO", rate, 1, 0)
        cic2 = StageConfig("CIC2", rate, self.cic2_decimation, self.cic2_order)
        rate /= self.cic2_decimation
        cic5 = StageConfig("CIC5", rate, self.cic5_decimation, self.cic5_order)
        rate /= self.cic5_decimation
        fir = StageConfig(
            f"{self.fir_taps} taps FIR", rate, self.fir_decimation, self.fir_taps
        )
        return (nco, cic2, cic5, fir)

    def table1_rows(self) -> list[tuple[str, float, int | None]]:
        """Rows of the paper's Table 1: (component, clock rate Hz, decimation).

        The NCO and Output rows carry ``None`` decimation, mirroring the
        '-' entries in the published table.
        """
        rows: list[tuple[str, float, int | None]] = []
        for stage in self.stages():
            rows.append(
                (stage.name, stage.input_rate_hz,
                 None if stage.decimation == 1 else stage.decimation)
            )
        rows.append(("Output", self.output_rate_hz, None))
        return rows


#: The paper's reference configuration (Section 2 / Table 1).
REFERENCE_DDC = DDCConfig()

#: The GC4016 GSM example of Section 3.1.2: 69.333 MHz input, CIC5
#: decimation 64, CFIR/PFIR each decimating by 2 (total 256), 68 taps used.
GC4016_GSM_EXAMPLE = DDCConfig(
    input_rate_hz=69_333_000.0,
    cic2_decimation=1,
    cic5_decimation=64,
    fir_decimation=4,
    fir_taps=68,
    data_width=14,
    cic2_order=0,
    cic5_order=5,
    nco_frequency_hz=0.0,
)
