"""Shard collection: merge per-pid trace shards into one JSONL trace.

Every traced process appends records to its own ``shard-<pid>.jsonl``
under the ``REPRO_TRACE_DIR`` directory (no cross-process locking — one
writer per file).  :func:`merge_trace` turns a shard directory into a
single trace file:

- a header line ``{"schema": "repro-trace/v1", ...}`` carrying record /
  shard / salvage counts, then one record per line;
- records sorted on ``(pid, seq)`` — a total order independent of
  scheduling, so merging the same shards twice is byte-identical
  (pinned by tests);
- **torn-tail salvage**: a worker killed mid-append (the chaos suite's
  ``kill`` faults) leaves a truncated last line; unparseable lines are
  counted in the header's ``salvaged`` field and skipped, never
  propagated — a damaged trace must not take down the run that produced
  it.

The merged file is written atomically (temp file + ``os.replace``),
mirroring :class:`repro.explore.store.ReportStore`.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from . import SCHEMA, SHARD_PREFIX


def read_shards(trace_dir: str | os.PathLike) -> tuple[list[dict], int, int]:
    """Parse every shard under ``trace_dir``.

    Returns ``(records, n_shards, n_salvaged)`` with records sorted on
    ``(pid, seq)``.  Unparseable lines (torn tails from killed workers)
    are skipped and counted, not raised.
    """
    records: list[dict] = []
    salvaged = 0
    shards = sorted(Path(trace_dir).glob(f"{SHARD_PREFIX}*.jsonl"))
    for shard in shards:
        try:
            text = shard.read_text(encoding="utf-8", errors="replace")
        except OSError:
            salvaged += 1
            continue
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                salvaged += 1
                continue
            if not isinstance(rec, dict) or "kind" not in rec:
                salvaged += 1
                continue
            records.append(rec)
    records.sort(key=_order_key)
    return records, len(shards), salvaged


def _order_key(rec: dict) -> tuple[int, int]:
    return (int(rec.get("pid", 0)), int(rec.get("seq", 0)))


def merge_trace(
    shard_dir: str | os.PathLike, out_path: str | os.PathLike
) -> dict:
    """Merge the shards under ``shard_dir`` into one trace at ``out_path``.

    Returns the header document.  The write is atomic and the output is
    a pure function of shard contents (header + ``(pid, seq)``-sorted
    records, keys sorted), so repeated merges are byte-identical.
    """
    records, n_shards, salvaged = read_shards(shard_dir)
    header = {
        "schema": SCHEMA,
        "records": len(records),
        "shards": n_shards,
        "salvaged": salvaged,
    }
    out = Path(out_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(out.parent), prefix=out.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for rec in records:
                fh.write(json.dumps(rec, sort_keys=True, default=repr) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, out)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return header


def load_trace(path: str | os.PathLike) -> list[dict]:
    """Records from a merged trace file *or* a raw shard directory.

    Header lines are recognised by their ``schema`` key and dropped;
    damaged lines are skipped (same salvage semantics as the merge).
    """
    p = Path(path)
    if p.is_dir():
        records, _, _ = read_shards(p)
        return records
    records = []
    for line in p.read_text(encoding="utf-8", errors="replace").splitlines():
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(rec, dict) or "schema" in rec or "kind" not in rec:
            continue
        records.append(rec)
    records.sort(key=_order_key)
    return records
