"""CLI: summarise a trace produced by the ``--trace`` flags.

``python -m repro.telemetry TRACE`` accepts either a merged trace file
(what ``--trace PATH`` writes) or a raw shard directory (a
``REPRO_TRACE_DIR`` that was never merged) and prints per-span-name
duration stats, counter totals, report-cache hit rates, worker
utilisation and the top-N slowest spans.  ``--json`` emits the summary
document instead, for machine consumers (CI artifacts).

Exit codes: 0 summary rendered; 2 unreadable or empty trace.
"""

from __future__ import annotations

import argparse
import json
import sys

from .collect import load_trace
from .summary import render, summarize


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Summarise a repro execution trace (JSONL).",
    )
    parser.add_argument(
        "trace",
        help="merged trace file written by --trace PATH, or a shard "
        "directory (REPRO_TRACE_DIR)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="slowest spans to list (default %(default)s)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the summary as JSON instead of text",
    )
    args = parser.parse_args(argv)

    try:
        records = load_trace(args.trace)
    except OSError as exc:
        print(f"error: cannot read trace {args.trace!r}: {exc}",
              file=sys.stderr)
        return 2
    if not records:
        print(f"error: no trace records in {args.trace!r}", file=sys.stderr)
        return 2

    doc = summarize(records)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(render(doc, top=args.top))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
