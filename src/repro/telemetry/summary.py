"""Trace summarisation: duration stats, cache rates, worker utilisation.

:func:`summarize` reduces a record list (from
:func:`repro.telemetry.collect.load_trace`) to a plain JSON-able dict;
:func:`render` formats that dict as the text report the
``python -m repro.telemetry`` CLI prints:

- per-span-name duration stats (count / total / mean / max);
- counter totals, with a per-``(primitive, engine)`` breakdown for
  ``kernel.dispatch`` so the resolved kernel tier is visible per trace;
- histogram stats (batch sizes);
- report-cache hit rate from the ``cache.hit`` / ``cache.miss``
  counters;
- worker utilisation: for every ``(pid, tid)`` that executed
  ``parallel.task`` spans, busy seconds over the worker's active
  wall-clock window;
- the top-N slowest individual spans.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

#: Span name emitted by ``repro.parallel`` around every task execution.
TASK_SPAN = "parallel.task"

#: Counter emitted by ``repro.kernels.dispatch.resolve``.
DISPATCH_COUNTER = "kernel.dispatch"


def _span_stats(durs: list[float]) -> dict[str, Any]:
    total = sum(durs)
    return {
        "count": len(durs),
        "total_s": total,
        "mean_s": total / len(durs),
        "max_s": max(durs),
    }


def summarize(records: list[dict]) -> dict[str, Any]:
    """Reduce trace records to the summary document (see module doc)."""
    span_durs: dict[str, list[float]] = defaultdict(list)
    spans: list[dict] = []
    counters: dict[str, int] = defaultdict(int)
    dispatch: dict[str, int] = defaultdict(int)
    hist: dict[str, list[float]] = defaultdict(list)
    tasks: dict[tuple[int, int], list[tuple[float, float]]] = defaultdict(list)
    events: dict[str, int] = defaultdict(int)

    for rec in records:
        kind = rec.get("kind")
        name = rec.get("name", "?")
        if kind == "span":
            dur = float(rec.get("dur", 0.0))
            span_durs[name].append(dur)
            spans.append(rec)
            if name == TASK_SPAN:
                key = (int(rec.get("pid", 0)), int(rec.get("tid", 0)))
                tasks[key].append((float(rec.get("t0", 0.0)), dur))
        elif kind == "counter":
            value = int(rec.get("value", 1))
            counters[name] += value
            if name == DISPATCH_COUNTER:
                attrs = rec.get("attrs", {})
                tier = f"{attrs.get('primitive', '?')}={attrs.get('engine', '?')}"
                dispatch[tier] += value
        elif kind == "histogram":
            hist[name].append(float(rec.get("value", 0.0)))
        elif kind == "event":
            events[name] += 1

    hits = counters.get("cache.hit", 0)
    misses = counters.get("cache.miss", 0)
    lookups = hits + misses

    workers = {}
    for (pid, tid), intervals in sorted(tasks.items()):
        busy = sum(d for _, d in intervals)
        start = min(t0 for t0, _ in intervals)
        end = max(t0 + d for t0, d in intervals)
        wall = end - start
        workers[f"{pid}/{tid}"] = {
            "tasks": len(intervals),
            "busy_s": busy,
            "wall_s": wall,
            "utilisation": busy / wall if wall > 0 else 1.0,
        }

    slowest = sorted(
        spans, key=lambda r: float(r.get("dur", 0.0)), reverse=True
    )
    return {
        "records": len(records),
        "spans": {
            name: _span_stats(durs)
            for name, durs in sorted(span_durs.items())
        },
        "counters": dict(sorted(counters.items())),
        "kernel_dispatch": dict(sorted(dispatch.items())),
        "histograms": {
            name: {
                "count": len(vals),
                "total": sum(vals),
                "mean": sum(vals) / len(vals),
                "min": min(vals),
                "max": max(vals),
            }
            for name, vals in sorted(hist.items())
        },
        "events": dict(sorted(events.items())),
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / lookups if lookups else None,
        },
        "workers": workers,
        "slowest": [
            {
                "name": r.get("name", "?"),
                "dur_s": float(r.get("dur", 0.0)),
                "pid": r.get("pid"),
                "attrs": r.get("attrs", {}),
            }
            for r in slowest
        ],
    }


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:7.2f}ms"
    return f"{seconds * 1e6:7.1f}us"


def render(summary: dict[str, Any], top: int = 10) -> str:
    """The text report for one summary document."""
    lines = [f"trace: {summary['records']} record(s)"]

    if summary["spans"]:
        lines.append("")
        lines.append("spans (per name):")
        lines.append(
            f"  {'name':<24} {'count':>7} {'total':>10} "
            f"{'mean':>10} {'max':>10}"
        )
        for name, st in summary["spans"].items():
            lines.append(
                f"  {name:<24} {st['count']:>7} {_fmt_s(st['total_s']):>10} "
                f"{_fmt_s(st['mean_s']):>10} {_fmt_s(st['max_s']):>10}"
            )

    cache = summary["cache"]
    if cache["hits"] or cache["misses"]:
        rate = cache["hit_rate"]
        lines.append("")
        lines.append(
            f"report-cache: {cache['hits']} hit(s), "
            f"{cache['misses']} miss(es)"
            + (f" — {rate:.1%} hit rate" if rate is not None else "")
        )

    if summary["counters"]:
        lines.append("")
        lines.append("counters:")
        for name, value in summary["counters"].items():
            lines.append(f"  {name:<24} {value:>10}")

    if summary["kernel_dispatch"]:
        lines.append("")
        lines.append("kernel dispatch (primitive=engine):")
        for tier, value in summary["kernel_dispatch"].items():
            lines.append(f"  {tier:<24} {value:>10}")

    if summary["histograms"]:
        lines.append("")
        lines.append("histograms:")
        for name, st in summary["histograms"].items():
            lines.append(
                f"  {name:<24} n={st['count']} mean={st['mean']:.1f} "
                f"min={st['min']:g} max={st['max']:g}"
            )

    if summary["workers"]:
        lines.append("")
        lines.append("worker utilisation (pid/tid over parallel.task spans):")
        lines.append(
            f"  {'worker':<24} {'tasks':>7} {'busy':>10} "
            f"{'wall':>10} {'util':>7}"
        )
        for worker, st in summary["workers"].items():
            lines.append(
                f"  {worker:<24} {st['tasks']:>7} {_fmt_s(st['busy_s']):>10} "
                f"{_fmt_s(st['wall_s']):>10} {st['utilisation']:>6.1%}"
            )

    slowest = summary["slowest"][:top]
    if slowest:
        lines.append("")
        lines.append(f"slowest {len(slowest)} span(s):")
        for rec in slowest:
            attrs = ", ".join(
                f"{k}={v!r}" for k, v in sorted(rec["attrs"].items())
            )
            lines.append(
                f"  {_fmt_s(rec['dur_s']):>10}  {rec['name']}"
                + (f"  [{attrs}]" if attrs else "")
            )

    return "\n".join(lines)
