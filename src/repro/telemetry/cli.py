"""Shared ``--trace`` / ``--metrics`` plumbing for the stack's CLIs.

The sweep, explore, montecarlo and bench entry points all grow the same
two observability flags; this module keeps their wiring in one place:

- :func:`add_telemetry_args` registers the flags;
- :func:`cache_counts` / :func:`cache_stats_line` surface the
  previously-dropped ``ReportCache.hits``/``misses`` counters as a
  per-run delta against the shared per-process evaluator cache;
- :func:`kernel_tier_line` renders
  :func:`repro.kernels.dispatch.active_engines` so the silently resolved
  kernel tier is visible;
- :func:`print_metrics` emits both to **stderr** — metrics must never
  touch the stdout report stream the ``--verify`` byte-identity contract
  covers.
"""

from __future__ import annotations

import argparse
import sys
from typing import TextIO


def add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    """Register ``--trace PATH`` and ``--metrics`` on a stack CLI."""
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a merged JSONL execution trace of this run (pool "
        "workers included) to PATH; summarise it with "
        "`python -m repro.telemetry PATH`",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print report-cache hit rates and resolved kernel tiers to "
        "stderr after the run (never touches the report on stdout)",
    )


def cache_counts(workload: str | None) -> tuple[int, int]:
    """``(hits, misses)`` of the workload's shared per-process cache."""
    from ..workloads import get

    cache = getattr(get(workload).shared_evaluator(), "cache", None)
    if cache is None:
        return (0, 0)
    return (cache.hits, cache.misses)


def cache_stats_line(
    before: tuple[int, int], workload: str | None
) -> str:
    """One line of cache behaviour since the ``before`` snapshot.

    Scalar-oracle paths run on fresh uncached evaluators by design, so a
    zero-lookup run is stated rather than divided by.
    """
    h0, m0 = before
    hits, misses = cache_counts(workload)
    dh, dm = hits - h0, misses - m0
    lookups = dh + dm
    if not lookups:
        return (
            "report-cache: no shared-cache lookups in this run "
            "(scalar paths run uncached by design)"
        )
    return (
        f"report-cache: {dh} hit(s), {dm} miss(es) — "
        f"{dh / lookups:.1%} hit rate over {lookups} lookup(s)"
    )


def kernel_tier_line() -> str:
    """The resolved engine tier per kernel primitive, one line."""
    from ..kernels.dispatch import active_engines

    tiers = active_engines()
    if not tiers:
        return "kernel tiers: none registered"
    return "kernel tiers: " + " ".join(
        f"{primitive}={engine}" for primitive, engine in tiers.items()
    )


def print_metrics(
    before: tuple[int, int],
    workload: str | None,
    extra: list[str] | None = None,
    stream: TextIO | None = None,
) -> None:
    """The ``--metrics`` epilogue (stderr only — see module docstring)."""
    if stream is None:
        # Resolve at call time so redirected/captured stderr is honoured.
        stream = sys.stderr
    print(cache_stats_line(before, workload), file=stream)
    for line in extra or []:
        print(line, file=stream)
    print(kernel_tier_line(), file=stream)
