"""Process-wide tracing and metrics for the evaluation stack.

The stack built in PRs 1-9 (batched models, adaptive explore,
fault-tolerant pools, the Monte-Carlo population engine) is a black box
at runtime: the only timing instrumentation was ad-hoc ``perf_counter``
pairs in the CLI ``--verify`` branches, and counters such as
``ReportCache.hits`` were tallied but reported nowhere.  This package is
the substrate that makes per-phase cost, cache efficacy and worker
behaviour visible — and provably free when disabled.

Two primitives:

- :func:`span` — a context manager timing one phase.  Span names reuse
  the :mod:`repro.faults` site vocabulary (``sweep.point``,
  ``explore.cell``, ``explore.round``, ``montecarlo.chunk``) so chaos
  tests and traces describe the same places, plus seam-level names
  (``parallel.task``, ``store.load``, ``bench.run``).
- :func:`counter` / :func:`gauge` / :func:`histogram` — point metrics
  (cache hits, retry charges, batch sizes, kernel-tier dispatches).

**Disabled is the default and costs (almost) nothing.**  A module-level
flag is checked once per call; :func:`span` returns a shared no-op
singleton and the metric functions return immediately — no allocation,
no locking, no buffering.  ``tests/test_telemetry.py`` pins both the
structure (nothing reaches the emit path when disabled) and a generous
wall-clock bound on the ``parallel_map`` hot path.

**Cross-process collection** copies the :mod:`repro.faults` pattern:
:func:`enable` writes the trace directory to :data:`ENV_VAR`
(``REPRO_TRACE_DIR``); pool workers inherit the environment at spawn and
initialise themselves from it at import, each appending to its own
``shard-<pid>.jsonl`` under that directory.  Shards are merged (sorted
on ``(pid, seq)``, torn tails from killed workers salvaged) into one
trace file by :func:`repro.telemetry.collect.merge_trace` — the
:func:`tracing` context manager used by the ``--trace`` CLI flags does
enable/run/merge in one step.  Like fault plans, tracing must be enabled
*before* a persistent pool spawns its workers
(``repro.parallel.shutdown()`` forces fresh pools).

**Telemetry never perturbs results.**  Timestamps and durations live
only in trace records, never in reports; trace I/O failures are
swallowed; the three ``--verify`` CLIs stay byte-identical with
``--trace`` active (pinned by tests).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

#: Environment variable carrying the shard directory to child processes
#: (the same propagation path ``REPRO_FAULTS`` uses).
ENV_VAR = "REPRO_TRACE_DIR"

#: Schema tag written into merged trace headers.
SCHEMA = "repro-trace/v1"

#: Shard filename pattern inside a trace directory.
SHARD_PREFIX = "shard-"

#: Buffered records per process before an automatic shard append.
FLUSH_EVERY = 512

# ----------------------------------------------------------------- state
#: The one flag the hot path checks.  Everything else lives behind it.
_enabled = False

_LOCK = threading.Lock()
_trace_dir: str | None = None
_pid: int | None = None
_seq = 0
_buffer: list[dict] = []


class _NullSpan:
    """The shared no-op returned by :func:`span` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live timed span; emits one record on exit."""

    __slots__ = ("name", "attrs", "_t0", "_p0")

    def __init__(self, name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        self._t0 = time.time()
        self._p0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter() - self._p0
        attrs = self.attrs
        if exc_type is not None:
            attrs = dict(attrs)
            attrs["error"] = exc_type.__name__
        _emit(
            {
                "kind": "span",
                "name": self.name,
                "t0": self._t0,
                "dur": dur,
                "attrs": attrs,
            }
        )
        return False


# ------------------------------------------------------------- emit path
def _emit(record: dict) -> None:
    """Stamp ``pid``/``tid``/``seq`` and buffer one record (thread-safe).

    A pid change since the last emit means this process was forked from
    an enabled parent: the inherited buffer belongs to the parent (which
    still holds its own copy), so it is dropped and the sequence counter
    restarts — each process owns exactly its own shard.
    """
    global _pid, _seq
    pid = os.getpid()
    with _LOCK:
        if not _enabled:
            return
        if pid != _pid:
            _pid = pid
            _seq = 0
            _buffer.clear()
        record["pid"] = pid
        record["tid"] = threading.get_ident()
        record["seq"] = _seq
        _seq += 1
        _buffer.append(record)
        if len(_buffer) >= FLUSH_EVERY:
            _flush_locked()


def _flush_locked() -> None:
    """Append the buffer to this process's shard file (lock held).

    Trace I/O must never take the run down: an unwritable shard (the
    trace directory was merged and removed while a persistent pool
    worker outlived it) drops the records silently.
    """
    if not _buffer or _trace_dir is None:
        return
    lines = "".join(
        json.dumps(rec, sort_keys=True, default=repr) + "\n"
        for rec in _buffer
    )
    _buffer.clear()
    shard = os.path.join(_trace_dir, f"{SHARD_PREFIX}{_pid}.jsonl")
    try:
        with open(shard, "a", encoding="utf-8") as fh:
            fh.write(lines)
    except OSError:
        pass


def flush() -> None:
    """Write buffered records to this process's shard file."""
    if not _enabled:
        return
    with _LOCK:
        _flush_locked()


# ------------------------------------------------------------ public API
def enabled() -> bool:
    """True when tracing is active in this process."""
    return _enabled


def enable(trace_dir: str | os.PathLike) -> None:
    """Arm tracing here and (via the environment) in child processes.

    ``trace_dir`` is created if missing; every participating process
    appends records to its own ``shard-<pid>.jsonl`` inside it.  Pool
    workers inherit the environment at spawn — enable *before* the pool
    exists (``repro.parallel.shutdown()`` forces fresh pools), exactly
    as with ``repro.faults.activate``.
    """
    global _enabled, _trace_dir, _pid, _seq
    path = os.fspath(trace_dir)
    os.makedirs(path, exist_ok=True)
    with _LOCK:
        if _enabled and _trace_dir == path:
            return
        _flush_locked()
        _trace_dir = path
        _pid = os.getpid()
        _seq = 0
        _buffer.clear()
        _enabled = True
    os.environ[ENV_VAR] = path


def disable() -> None:
    """Flush and disarm tracing here and for future child processes."""
    global _enabled, _trace_dir
    with _LOCK:
        _flush_locked()
        _enabled = False
        _trace_dir = None
    os.environ.pop(ENV_VAR, None)


def span(name: str, **attrs: Any) -> "_Span | _NullSpan":
    """``with span("explore.round", round=3): ...`` — time one phase.

    Disabled: returns the shared no-op singleton (no allocation).
    Attribute values should be JSON-serialisable primitives; anything
    else is stored as its ``repr``.
    """
    if not _enabled:
        return _NULL_SPAN
    return _Span(name, attrs)


def record_span(name: str, t0: float, dur: float, **attrs: Any) -> None:
    """Emit a span retroactively from an externally measured interval.

    For call sites that already time themselves (the bench harness):
    ``t0`` is a ``time.time()`` epoch instant, ``dur`` seconds.
    """
    if not _enabled:
        return
    _emit(
        {"kind": "span", "name": name, "t0": t0, "dur": dur, "attrs": attrs}
    )


def event(name: str, **attrs: Any) -> None:
    """Emit a point-in-time marker (``pool.drain``, ...)."""
    if not _enabled:
        return
    _emit({"kind": "event", "name": name, "t": time.time(), "attrs": attrs})


def counter(name: str, value: int = 1, **attrs: Any) -> None:
    """Add ``value`` to the named monotonic counter."""
    if not _enabled:
        return
    _emit(
        {
            "kind": "counter",
            "name": name,
            "t": time.time(),
            "value": value,
            "attrs": attrs,
        }
    )


def gauge(name: str, value: float, **attrs: Any) -> None:
    """Record the instantaneous level of a quantity (pool size, ...)."""
    if not _enabled:
        return
    _emit(
        {
            "kind": "gauge",
            "name": name,
            "t": time.time(),
            "value": value,
            "attrs": attrs,
        }
    )


def histogram(name: str, value: float, **attrs: Any) -> None:
    """Record one observation of a distribution (batch sizes, ...)."""
    if not _enabled:
        return
    _emit(
        {
            "kind": "histogram",
            "name": name,
            "t": time.time(),
            "value": value,
            "attrs": attrs,
        }
    )


@contextmanager
def tracing(trace_path: str | os.PathLike | None) -> Iterator[str | None]:
    """Enable tracing for a block and merge shards to ``trace_path``.

    The CLI ``--trace PATH`` implementation: shards collect in a private
    temporary directory while the block runs (workers included, via the
    environment), then :func:`repro.telemetry.collect.merge_trace`
    writes the single merged JSONL trace to ``trace_path`` and the shard
    directory is removed.  ``trace_path=None`` is a no-op so callers can
    wrap unconditionally.
    """
    if trace_path is None:
        yield None
        return
    shard_dir = tempfile.mkdtemp(prefix="repro-trace-")
    enable(shard_dir)
    try:
        yield shard_dir
    finally:
        disable()
        from .collect import merge_trace

        merge_trace(shard_dir, trace_path)
        shutil.rmtree(shard_dir, ignore_errors=True)


def _init_from_env() -> None:
    """Self-arm in processes spawned with :data:`ENV_VAR` set (workers)."""
    raw = os.environ.get(ENV_VAR)
    if raw:
        try:
            enable(raw)
        except OSError:  # unwritable inherited dir: stay disabled
            pass


_init_from_env()
