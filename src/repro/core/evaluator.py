"""Cross-architecture evaluation of a DDC spec.

Runs every architecture model on a configuration, assembles the Table 7
comparison, applies the paper's technology scaling, and answers the two
Section 7 scenario questions (static winner, reconfigurable winner).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..archs.base import ArchitectureModel, Flexibility, ImplementationReport
from ..config import DDCConfig, REFERENCE_DDC
from ..energy.comparison import ArchitectureComparison
from ..energy.scenarios import ScenarioAnalysis, ScenarioCandidate
from ..energy.technology import TECH_130NM, scale_power
from ..errors import ConfigurationError


def default_models() -> list[ArchitectureModel]:
    """The paper's five architectures, in Table 7 order."""
    from ..archs.asic.gc4016 import GC4016Model
    from ..archs.asic.lowpower import LowPowerDDCModel
    from ..archs.fpga.devices import CYCLONE_I_EP1C3, CYCLONE_II_EP2C5
    from ..archs.fpga.model import CycloneModel
    from ..archs.gpp.arm9 import ARM9Model
    from ..archs.montium.model import MontiumModel

    return [
        GC4016Model(),
        LowPowerDDCModel(),
        ARM9Model(),
        CycloneModel(CYCLONE_I_EP1C3),
        CycloneModel(CYCLONE_II_EP2C5),
        MontiumModel(),
    ]


@dataclass
class EvaluationResult:
    """Everything the evaluation produced."""

    config: DDCConfig
    reports: list[ImplementationReport]
    comparison: ArchitectureComparison
    static_winner: str
    reconfigurable_winner: str

    def render(self) -> str:
        """The Table 7-style text table."""
        return self.comparison.render()


class DDCEvaluator:
    """Evaluates a DDC configuration across architecture models."""

    def __init__(self, models: list[ArchitectureModel] | None = None) -> None:
        self.models = models if models is not None else default_models()
        if not self.models:
            raise ConfigurationError("need at least one architecture model")
        self._last_config: DDCConfig = REFERENCE_DDC

    def evaluate(self, config: DDCConfig = REFERENCE_DDC) -> EvaluationResult:
        """Run every model; build the comparison and scenario answers."""
        self._last_config = config
        reports: list[ImplementationReport] = []
        comparison = ArchitectureComparison(TECH_130NM)
        for model in self.models:
            report = model.implement(config)
            reports.append(report)
            scaled = None
            dyn_only = getattr(model, "dynamic_power_w", None)
            if dyn_only is not None and report.technology.feature_um < 0.13:
                # The paper scales only the *dynamic* component when going
                # up from 0.09 um to the 0.13 um reference (Cyclone II row).
                scaled = scale_power(
                    dyn_only(config), report.technology, TECH_130NM
                )
            comparison.add(report, scaled_power_w=scaled)

        static = self._static_winner(reports)
        reconf = self._reconfigurable_winner(reports)
        return EvaluationResult(config, reports, comparison, static, reconf)

    def _static_winner(self, reports: list[ImplementationReport]) -> str:
        """Section 7.1: full-time DDC -> lowest feasible native power."""
        feasible = [r for r in reports if r.feasible]
        if not feasible:
            raise ConfigurationError("no architecture sustains the DDC")
        return min(feasible, key=lambda r: r.power_w).architecture

    def _reconfigurable_winner(
        self, reports: list[ImplementationReport]
    ) -> str:
        """Section 7.2: part-time DDC -> best *reconfigurable* architecture.

        Fixed-function chips waste their silicon when the DDC is idle, so
        the race is restricted to reconfigurable fabrics.  The power
        attributable to the DDC on a shared fabric is its *dynamic*
        component — leakage burns regardless of which task the fabric
        hosts — which is how the Cyclone II (31 mW dynamic at its native
        0.09 um) beats the Montium's 38.7 mW, the paper's "best performing
        architecture at the reconfigurable area is the Altera Cyclone II
        due to its smaller technology size".
        """
        best_name = None
        best_power = float("inf")
        for model, report in zip(self.models, reports):
            if not report.feasible:
                continue
            if report.flexibility == Flexibility.FIXED_FUNCTION:
                continue
            dyn = getattr(model, "dynamic_power_w", None)
            power = dyn(self._last_config) if dyn else report.power_w
            if power < best_power:
                best_power = power
                best_name = report.architecture
        if best_name is None:
            raise ConfigurationError("no reconfigurable architecture fits")
        return best_name

    def scenario_candidates(
        self, config: DDCConfig = REFERENCE_DDC,
        standby_fraction: float = 0.05,
        strict: bool = True,
    ) -> list[ScenarioCandidate]:
        """Feasible architectures as scenario candidates, model order.

        Fixed-function chips are charged ``standby_fraction`` of their
        active power while idle (leakage/standby); reconfigurable fabrics
        are considered reusable (their idle time hosts other work).

        ``strict=False`` additionally *skips* models that cannot map the
        configuration at all (they raise ``ConfigurationError`` /
        ``MappingError`` — e.g. the Montium schedule only implements the
        reference decimation plan) instead of propagating — the behaviour
        sweeps over off-reference grids need.
        """
        from ..errors import MappingError

        candidates = []
        for model in self.models:
            try:
                report = model.implement(config)
            except (ConfigurationError, MappingError):
                if strict:
                    raise
                continue
            if not report.feasible:
                continue
            reusable = report.flexibility != Flexibility.FIXED_FUNCTION
            candidates.append(
                ScenarioCandidate(
                    name=report.architecture,
                    active_power_w=report.power_w,
                    standby_power_w=report.power_w * standby_fraction,
                    reusable=reusable,
                )
            )
        return candidates

    def scenario_analysis(
        self, config: DDCConfig = REFERENCE_DDC,
        standby_fraction: float = 0.05,
    ) -> ScenarioAnalysis:
        """Duty-cycle analysis over all feasible architectures."""
        return ScenarioAnalysis(
            self.scenario_candidates(config, standby_fraction)
        )
