"""Cross-architecture evaluation of a DDC spec.

Runs every architecture model on a configuration, assembles the Table 7
comparison, applies the paper's technology scaling, and answers the two
Section 7 scenario questions (static winner, reconfigurable winner).

Two evaluation paths exist and are **bit-identical**:

- the scalar path (:meth:`DDCEvaluator.evaluate`,
  :meth:`DDCEvaluator.scenario_candidates`) — one configuration at a
  time through each model's scalar ``implement``, the seed behaviour and
  the oracle;
- the batched path (:meth:`DDCEvaluator.evaluate_batch`,
  :meth:`DDCEvaluator.scenario_candidates_batch`) — whole
  :class:`~repro.config.DDCConfig` axes through each model's
  ``implement_batch`` in one call, which the sweep engine, the planner
  and the paper artifacts ride.

:class:`DDCEvaluator` is stateless: every method takes the configuration
explicitly and two interleaved calls on one instance can never observe
each other (the seed kept a mutable ``_last_config``, which made the
reconfigurable-winner answer depend on call order).  :class:`ReportCache`
memoises per-(model, configuration) reports — including mapping errors —
behind a content-hashed key so repeated grid consumers (planner, sweep,
paper) amortise model evaluation; :func:`shared_evaluator` is the
per-process cached instance they share.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, fields
from typing import Any, Sequence

from .. import telemetry
from ..archs.base import (
    ArchitectureModel,
    BatchImplementationReport,
    Flexibility,
    ImplementationReport,
)
from ..config import DDCConfig, REFERENCE_DDC
from ..energy.comparison import ArchitectureComparison
from ..energy.scenarios import ScenarioAnalysis, ScenarioCandidate
from ..energy.technology import TECH_130NM, scale_power
from ..errors import ConfigurationError


def default_models() -> list[ArchitectureModel]:
    """The paper's five architectures, in Table 7 order."""
    from ..archs.asic.gc4016 import GC4016Model
    from ..archs.asic.lowpower import LowPowerDDCModel
    from ..archs.fpga.devices import CYCLONE_I_EP1C3, CYCLONE_II_EP2C5
    from ..archs.fpga.model import CycloneModel
    from ..archs.gpp.arm9 import ARM9Model
    from ..archs.montium.model import MontiumModel

    return [
        GC4016Model(),
        LowPowerDDCModel(),
        ARM9Model(),
        CycloneModel(CYCLONE_I_EP1C3),
        CycloneModel(CYCLONE_II_EP2C5),
        MontiumModel(),
    ]


def config_cache_key(config: Any) -> tuple:
    """Content hash of a configuration: the tuple of its field values.

    Two configurations with equal fields share cache entries regardless
    of object identity; any new configuration field automatically
    extends the key.  Works for any workload's frozen configuration
    dataclass (for :class:`~repro.config.DDCConfig` the tuple is
    unchanged from when this helper was DDC-specific, so cache keys and
    checkpoint digests carry over).
    """
    return tuple(getattr(config, f.name) for f in fields(type(config)))


class ReportCache:
    """Content-hashed (model, configuration) -> implementation report cache.

    Stores the *outcome* of ``model.implement(config)`` — the report, or
    the :class:`~repro.errors.ConfigurationError` /
    :class:`~repro.errors.MappingError` the model raised — keyed by
    ``(model.cache_key(), config_cache_key(config))``.  Mapping errors
    are cached too, so fully-unmappable grid points cost one model call,
    not one per consumer.

    **Picklability contract**: every entry is a frozen dataclass of
    primitives (or a library exception), so a populated cache — and any
    evaluator holding one — pickles cleanly; ``backend="process"`` sweep
    workers each hold their own per-process cache
    (:func:`shared_report_cache`) and amortise model evaluation across
    the points they serve.

    Invalidation is explicit: :meth:`invalidate` drops one model's
    entries (after changing a model's constants in-place), :meth:`clear`
    drops everything.  ``hits``/``misses`` make cache behaviour
    observable for tests and benches.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, tuple] = {}
        # Batch-report architecture label per model key, recorded the
        # first time a model runs so fully-cached (even fully-unmappable)
        # batches reproduce the model's own label bit for bit.
        self._architectures: dict[tuple, str] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (and reset the hit/miss counters)."""
        self._entries.clear()
        self._architectures.clear()
        self.hits = 0
        self.misses = 0

    def invalidate(self, model: ArchitectureModel) -> int:
        """Drop every entry of one model; returns the number dropped."""
        key = model.cache_key()
        stale = [k for k in self._entries if k[0] == key]
        for k in stale:
            del self._entries[k]
        self._architectures.pop(key, None)
        return len(stale)

    # ------------------------------------------------------- store hook
    def entries(self):
        """Iterate ``(model_key, config_key, report, error)`` tuples.

        The export side of the on-disk spill
        (:class:`repro.explore.store.ReportStore`): every entry is a
        frozen dataclass of primitives or a library exception, exactly
        what the picklability contract already guarantees.
        """
        for (model_key, config_key), (report, error) in self._entries.items():
            yield model_key, config_key, report, error

    def insert(
        self,
        model_key: tuple,
        config_key: tuple,
        report: ImplementationReport | None,
        error: Exception | None,
    ) -> None:
        """Warm-start one entry (the import side of the on-disk spill).

        Counts as neither a hit nor a miss; the entry must honour the
        cache contract (a report or a cached mapping error, keyed by the
        model's ``cache_key()`` and :func:`config_cache_key` content).
        """
        if (report is None) == (error is None):
            raise ConfigurationError(
                "a cache entry is exactly one of report or error"
            )
        self._entries[(model_key, tuple(config_key))] = (report, error)

    def architecture_labels(self) -> dict[tuple, str]:
        """Per-model batch-report labels recorded so far (store payload)."""
        return dict(self._architectures)

    def insert_architecture(self, model_key: tuple, label: str) -> None:
        """Warm-start one model's batch-report architecture label."""
        self._architectures.setdefault(model_key, label)

    def _run_model(
        self, model: ArchitectureModel, configs: Sequence[DDCConfig]
    ) -> BatchImplementationReport:
        """One uncached model call, recording its architecture label."""
        batch = model.implement_batch(configs)
        self._architectures.setdefault(model.cache_key(), batch.architecture)
        return batch

    def _outcome(
        self, model: ArchitectureModel, config: DDCConfig
    ) -> tuple[ImplementationReport | None, Exception | None]:
        key = (model.cache_key(), config_cache_key(config))
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            telemetry.counter("cache.hit")
            return entry
        self.misses += 1
        telemetry.counter("cache.miss")
        batch = self._run_model(model, [config])
        entry = (batch.reports[0], batch.errors[0])
        self._entries[key] = entry
        return entry

    def implement(
        self, model: ArchitectureModel, config: DDCConfig
    ) -> ImplementationReport:
        """Cached ``model.implement(config)`` (re-raises cached errors)."""
        report, error = self._outcome(model, config)
        if error is not None:
            raise error
        assert report is not None
        return report

    def implement_batch(
        self, model: ArchitectureModel, configs: Sequence[DDCConfig]
    ) -> BatchImplementationReport:
        """Cached ``model.implement_batch(configs)``.

        Consults the cache per configuration and runs one batched model
        call over the misses only, so a warm cache serves whole axes
        without touching the model.
        """
        if not configs:
            return self._run_model(model, configs)
        model_key = model.cache_key()
        outcomes: list[tuple | None] = []
        missing: list[int] = []
        for i, config in enumerate(configs):
            entry = self._entries.get((model_key, config_cache_key(config)))
            if entry is None:
                missing.append(i)
            else:
                self.hits += 1
            outcomes.append(entry)
        if len(configs) > len(missing):
            telemetry.counter("cache.hit", len(configs) - len(missing))
        telemetry.histogram(
            "cache.batch_size", len(configs), misses=len(missing)
        )
        if missing:
            self.misses += len(missing)
            telemetry.counter("cache.miss", len(missing))
            fresh = self._run_model(
                model, [configs[i] for i in missing]
            )
            for j, i in enumerate(missing):
                entry = (fresh.reports[j], fresh.errors[j])
                self._entries[
                    (model_key, config_cache_key(configs[i]))
                ] = entry
                outcomes[i] = entry
        reports = [entry[0] for entry in outcomes]  # type: ignore[index]
        errors = [entry[1] for entry in outcomes]  # type: ignore[index]
        return BatchImplementationReport.from_reports(
            self._architectures.get(model_key, model.name), reports, errors
        )


@functools.lru_cache(maxsize=1)
def shared_report_cache() -> ReportCache:
    """The per-process report cache planner/sweep/paper consumers share."""
    return ReportCache()


@functools.lru_cache(maxsize=1)
def shared_evaluator() -> DDCEvaluator:
    """One cached default evaluator per process.

    Grid consumers (the sweep engine, the paper artifacts, the benches)
    share this instance so model construction and per-configuration
    reports are paid once per process — in particular inside
    ``backend="process"`` pool workers, which rebuild it lazily on first
    use and then serve every point they are handed from the warm cache.
    """
    return DDCEvaluator(cache=shared_report_cache())


@dataclass
class EvaluationResult:
    """Everything the evaluation produced."""

    config: DDCConfig
    reports: list[ImplementationReport]
    comparison: ArchitectureComparison
    static_winner: str
    reconfigurable_winner: str

    def render(self) -> str:
        """The Table 7-style text table."""
        return self.comparison.render()


class DDCEvaluator:
    """Evaluates DDC configurations across architecture models.

    Stateless: configurations are threaded explicitly through every
    method, so one instance serves interleaved or concurrent evaluations
    of different configurations correctly.  ``cache`` (optional) memoises
    per-(model, configuration) reports; the default ``None`` keeps every
    call a fresh model run — the scalar-oracle behaviour the sweep
    verification compares against.
    """

    def __init__(
        self,
        models: list[ArchitectureModel] | None = None,
        cache: ReportCache | None = None,
    ) -> None:
        self.models = models if models is not None else default_models()
        if not self.models:
            raise ConfigurationError("need at least one architecture model")
        self.cache = cache

    # ------------------------------------------------------------- plumbing
    def _implement(
        self, model: ArchitectureModel, config: DDCConfig
    ) -> ImplementationReport:
        if self.cache is None:
            return model.implement(config)
        return self.cache.implement(model, config)

    def _implement_batch(
        self, model: ArchitectureModel, configs: Sequence[DDCConfig]
    ) -> BatchImplementationReport:
        if self.cache is None:
            return model.implement_batch(configs)
        return self.cache.implement_batch(model, configs)

    def report_batches(
        self, configs: Sequence[DDCConfig]
    ) -> list[BatchImplementationReport]:
        """One :class:`~repro.archs.base.BatchImplementationReport` per
        model over the whole configuration axis, in model order.

        The raw material of the batched consumers: the scenario candidate
        builder (:meth:`scenario_candidates_from_batches`) and the
        design-space explorer's Pareto engine both reuse the same batches
        so each model runs (or hits the cache) exactly once per axis.
        """
        telemetry.histogram(
            "evaluator.batch_size", len(configs), models=len(self.models)
        )
        return [self._implement_batch(model, configs) for model in self.models]

    def _dynamic_powers(
        self, model: ArchitectureModel, configs: Sequence[DDCConfig]
    ) -> list[float] | None:
        """Batched ``dynamic_power_w`` per config (None: model has none)."""
        dyn = getattr(model, "dynamic_power_w", None)
        if dyn is None:
            return None
        dyn_batch = getattr(model, "dynamic_power_batch", None)
        if dyn_batch is not None:
            return dyn_batch(configs)
        return [dyn(c) for c in configs]

    # ------------------------------------------------------------ evaluate
    def evaluate(self, config: DDCConfig = REFERENCE_DDC) -> EvaluationResult:
        """Run every model; build the comparison and scenario answers."""
        reports: list[ImplementationReport] = []
        comparison = ArchitectureComparison(TECH_130NM)
        for model in self.models:
            report = self._implement(model, config)
            reports.append(report)
            scaled = None
            dyn_only = getattr(model, "dynamic_power_w", None)
            if dyn_only is not None and report.technology.feature_um < 0.13:
                # The paper scales only the *dynamic* component when going
                # up from 0.09 um to the 0.13 um reference (Cyclone II row).
                scaled = scale_power(
                    dyn_only(config), report.technology, TECH_130NM
                )
            comparison.add(report, scaled_power_w=scaled)

        static = self._static_winner(reports)
        reconf = self._reconfigurable_winner(reports, config)
        return EvaluationResult(config, reports, comparison, static, reconf)

    def evaluate_batch(
        self, configs: Sequence[DDCConfig]
    ) -> list[EvaluationResult]:
        """Batched :meth:`evaluate` over a whole configuration axis.

        One ``implement_batch`` call per model serves every
        configuration, and the dynamic-power components batch through
        ``dynamic_power_batch`` where a model provides it; each returned
        result is bit-identical to the scalar :meth:`evaluate` of the
        same configuration, and a configuration some model cannot map
        raises exactly the scalar call's error.
        """
        if not configs:
            return []
        batches = [
            self._implement_batch(model, configs) for model in self.models
        ]
        # Materialise reports first so an unmappable configuration raises
        # the same error, at the same model, as the scalar path would.
        per_config_reports = [
            [batch.report_at(i) for batch in batches]
            for i in range(len(configs))
        ]
        dyn_powers = [
            self._dynamic_powers(model, configs) for model in self.models
        ]
        results = []
        for i, config in enumerate(configs):
            reports = per_config_reports[i]
            comparison = ArchitectureComparison(TECH_130NM)
            for j, report in enumerate(reports):
                scaled = None
                if (
                    dyn_powers[j] is not None
                    and report.technology.feature_um < 0.13
                ):
                    scaled = scale_power(
                        dyn_powers[j][i], report.technology, TECH_130NM
                    )
                comparison.add(report, scaled_power_w=scaled)
            results.append(
                EvaluationResult(
                    config,
                    reports,
                    comparison,
                    self._static_winner(reports),
                    self._reconfigurable_winner(
                        reports, config,
                        dyn_powers=[
                            d[i] if d is not None else None
                            for d in dyn_powers
                        ],
                    ),
                )
            )
        return results

    # ------------------------------------------------------------- winners
    def _static_winner(self, reports: list[ImplementationReport]) -> str:
        """Section 7.1: full-time DDC -> lowest feasible native power."""
        feasible = [r for r in reports if r.feasible]
        if not feasible:
            raise ConfigurationError("no architecture sustains the DDC")
        return min(feasible, key=lambda r: r.power_w).architecture

    def _reconfigurable_winner(
        self,
        reports: list[ImplementationReport],
        config: DDCConfig,
        dyn_powers: Sequence[float | None] | None = None,
    ) -> str:
        """Section 7.2: part-time DDC -> best *reconfigurable* architecture.

        Fixed-function chips waste their silicon when the DDC is idle, so
        the race is restricted to reconfigurable fabrics.  The power
        attributable to the DDC on a shared fabric is its *dynamic*
        component — leakage burns regardless of which task the fabric
        hosts — which is how the Cyclone II (31 mW dynamic at its native
        0.09 um) beats the Montium's 38.7 mW, the paper's "best performing
        architecture at the reconfigurable area is the Altera Cyclone II
        due to its smaller technology size".

        ``config`` is the configuration the reports were produced for —
        threaded explicitly (the evaluator keeps no per-call state);
        ``dyn_powers`` optionally carries pre-batched dynamic powers so
        the batched path avoids per-config model calls.
        """
        best_name = None
        best_power = float("inf")
        for j, (model, report) in enumerate(zip(self.models, reports)):
            if not report.feasible:
                continue
            if report.flexibility == Flexibility.FIXED_FUNCTION:
                continue
            if dyn_powers is not None:
                dyn_value = dyn_powers[j]
                power = dyn_value if dyn_value is not None else report.power_w
            else:
                dyn = getattr(model, "dynamic_power_w", None)
                power = dyn(config) if dyn else report.power_w
            if power < best_power:
                best_power = power
                best_name = report.architecture
        if best_name is None:
            raise ConfigurationError("no reconfigurable architecture fits")
        return best_name

    # ----------------------------------------------------------- scenarios
    @staticmethod
    def _candidate(
        report: ImplementationReport, standby_fraction: float
    ) -> ScenarioCandidate:
        """One feasible report as a scenario candidate (both paths)."""
        return ScenarioCandidate(
            name=report.architecture,
            active_power_w=report.power_w,
            standby_power_w=report.power_w * standby_fraction,
            reusable=report.flexibility != Flexibility.FIXED_FUNCTION,
        )

    @staticmethod
    def _require_candidates(
        candidates: list[ScenarioCandidate], config: DDCConfig
    ) -> list[ScenarioCandidate]:
        """A fully-unmappable/infeasible grid point is a clear error, not
        an empty list for ``ScenarioAnalysis`` to choke on downstream."""
        if not candidates:
            raise ConfigurationError(
                "no architecture yields a feasible scenario candidate for "
                f"{config}"
            )
        return candidates

    def scenario_candidates(
        self, config: DDCConfig = REFERENCE_DDC,
        standby_fraction: float = 0.05,
        strict: bool = True,
    ) -> list[ScenarioCandidate]:
        """Feasible architectures as scenario candidates, model order.

        Fixed-function chips are charged ``standby_fraction`` of their
        active power while idle (leakage/standby); reconfigurable fabrics
        are considered reusable (their idle time hosts other work).

        ``strict=False`` additionally *skips* models that cannot map the
        configuration at all (they raise ``ConfigurationError`` /
        ``MappingError`` — e.g. the Montium schedule only implements the
        reference decimation plan) instead of propagating — the behaviour
        sweeps over off-reference grids need.  A configuration no model
        maps into a feasible candidate raises a
        :class:`~repro.errors.ConfigurationError` naming it.
        """
        from ..errors import MappingError

        candidates = []
        for model in self.models:
            try:
                report = self._implement(model, config)
            except (ConfigurationError, MappingError):
                if strict:
                    raise
                continue
            if not report.feasible:
                continue
            candidates.append(self._candidate(report, standby_fraction))
        return self._require_candidates(candidates, config)

    def scenario_candidates_batch(
        self,
        configs: Sequence[DDCConfig],
        standby_fraction: float = 0.05,
        strict: bool = True,
    ) -> list[list[ScenarioCandidate]]:
        """Batched :meth:`scenario_candidates` over a configuration axis.

        One ``implement_batch`` call per model serves the whole axis; the
        per-configuration candidate lists (and every raised error) are
        bit-identical to the scalar path's.
        """
        return self.scenario_candidates_from_batches(
            self.report_batches(configs), configs, standby_fraction, strict
        )

    def scenario_candidate_outcomes_batch(
        self,
        configs: Sequence[DDCConfig],
        standby_fraction: float = 0.05,
    ) -> list[tuple[list[ScenarioCandidate] | None, Exception | None]]:
        """Batched tolerant candidate evaluation over a configuration axis.

        The public one-call entry the Monte-Carlo population engine rides:
        one ``implement_batch`` per model over the *distinct* configs,
        then the error-channel candidate builder
        (:meth:`scenario_candidate_outcomes_from_batches`), so a million
        sampled users cost only as many model evaluations as there are
        distinct configurations.
        """
        return self.scenario_candidate_outcomes_from_batches(
            self.report_batches(configs), configs, standby_fraction
        )

    def scenario_candidates_from_batches(
        self,
        batches: Sequence[BatchImplementationReport],
        configs: Sequence[DDCConfig],
        standby_fraction: float = 0.05,
        strict: bool = True,
    ) -> list[list[ScenarioCandidate]]:
        """Candidate lists from already-materialised model batches.

        Split out of :meth:`scenario_candidates_batch` so consumers that
        also need the batches themselves (the explorer's Pareto engine)
        can evaluate each model once and build both views from it.
        """
        out: list[list[ScenarioCandidate]] = []
        for i, config in enumerate(configs):
            candidates = []
            for batch in batches:
                error = batch.errors[i]
                if error is not None:
                    if strict:
                        raise error
                    continue
                report = batch.reports[i]
                assert report is not None
                if not report.feasible:
                    continue
                candidates.append(self._candidate(report, standby_fraction))
            out.append(self._require_candidates(candidates, config))
        return out

    def scenario_candidate_outcomes_from_batches(
        self,
        batches: Sequence[BatchImplementationReport],
        configs: Sequence[DDCConfig],
        standby_fraction: float = 0.05,
    ) -> list[tuple[list[ScenarioCandidate] | None, Exception | None]]:
        """Per-config candidate lists with a captured error channel.

        The fault-tolerant twin of :meth:`scenario_candidates_from_batches`
        (``strict=False`` semantics): models that cannot map a
        configuration drop out silently, and a configuration that yields
        *no* feasible candidate produces ``(None, error)`` instead of
        raising — so one poisoned grid cell cannot abort a whole
        ``on_error="skip"``/``"retry"`` sweep or exploration.  Exactly
        one element of each tuple is non-``None``; successful entries
        are bit-identical to the strict path's.
        """
        out: list[tuple[list[ScenarioCandidate] | None, Exception | None]] = []
        for i, config in enumerate(configs):
            candidates = []
            for batch in batches:
                if batch.errors[i] is not None:
                    continue
                report = batch.reports[i]
                assert report is not None
                if not report.feasible:
                    continue
                candidates.append(self._candidate(report, standby_fraction))
            try:
                out.append(
                    (self._require_candidates(candidates, config), None)
                )
            except ConfigurationError as exc:
                out.append((None, exc))
        return out

    def scenario_analysis(
        self, config: DDCConfig = REFERENCE_DDC,
        standby_fraction: float = 0.05,
    ) -> ScenarioAnalysis:
        """Duty-cycle analysis over all feasible architectures.

        Rides the batched candidate path (one ``implement_batch`` per
        model), which is bit-identical to the scalar
        :meth:`scenario_candidates`.
        """
        return ScenarioAnalysis(
            self.scenario_candidates_batch([config], standby_fraction)[0]
        )


#: The evaluator is workload-agnostic — nothing in it is DDC-specific
#: beyond the default ``models=None`` fallback — so the workload layer
#: (:mod:`repro.workloads`) addresses it under the generic name.
WorkloadEvaluator = DDCEvaluator
