"""The DDC task specification.

A :class:`DDCSpec` captures *what* must be done (rates, band, precision),
independent of *how* (the decimation plan and the architecture).  The
planner turns a spec + plan into a :class:`repro.config.DDCConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DDCConfig
from ..errors import ConfigurationError


@dataclass(frozen=True)
class DDCSpec:
    """What the DDC must achieve.

    Parameters
    ----------
    input_rate_hz:
        ADC sample rate (64.512 MHz in the paper's reference).
    output_rate_hz:
        Required output sample rate (24 kHz).  ``input/output`` must be an
        integer — the total decimation.
    carrier_hz:
        Centre frequency of the band of interest.
    bandwidth_hz:
        Two-sided bandwidth to preserve (10 kHz for DRM).
    data_width:
        ADC/output word width in bits.
    """

    input_rate_hz: float = 64_512_000.0
    output_rate_hz: float = 24_000.0
    carrier_hz: float = 10_000_000.0
    bandwidth_hz: float = 10_000.0
    data_width: int = 12

    def __post_init__(self) -> None:
        if self.input_rate_hz <= 0 or self.output_rate_hz <= 0:
            raise ConfigurationError("rates must be positive")
        ratio = self.input_rate_hz / self.output_rate_hz
        if abs(ratio - round(ratio)) > 1e-6:
            raise ConfigurationError(
                f"input/output rate ratio {ratio} is not an integer"
            )
        if round(ratio) < 1:
            raise ConfigurationError("output rate exceeds input rate")
        if not 0 < self.carrier_hz < self.input_rate_hz / 2:
            raise ConfigurationError("carrier must be within (0, Nyquist)")
        if self.bandwidth_hz <= 0 or self.bandwidth_hz > self.output_rate_hz:
            raise ConfigurationError(
                "bandwidth must be positive and representable at the "
                "output rate"
            )

    @property
    def total_decimation(self) -> int:
        """Required overall rate change."""
        return round(self.input_rate_hz / self.output_rate_hz)

    def to_config(
        self,
        cic2_decimation: int,
        cic5_decimation: int,
        fir_decimation: int,
        fir_taps: int = 125,
    ) -> DDCConfig:
        """Bind a decimation plan to this spec, yielding a DDCConfig."""
        product = cic2_decimation * cic5_decimation * fir_decimation
        if product != self.total_decimation:
            raise ConfigurationError(
                f"plan product {product} != required {self.total_decimation}"
            )
        return DDCConfig(
            input_rate_hz=self.input_rate_hz,
            cic2_decimation=cic2_decimation,
            cic5_decimation=cic5_decimation,
            fir_decimation=fir_decimation,
            fir_taps=fir_taps,
            data_width=self.data_width,
            cic2_order=2 if cic2_decimation > 1 else 0,
            cic5_order=5,
            nco_frequency_hz=self.carrier_hz,
        )
