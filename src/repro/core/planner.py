"""Decimation-plan search.

The paper picks 16 (CIC2) x 21 (CIC5) x 8 (FIR) = 2688 by hand.  The
planner generalises: enumerate integer factorisations of the required
total decimation into the three stages, filter out plans that violate the
chain's engineering constraints, and rank them by estimated hardware cost
(the gate-count x activity model of the low-power ASIC — the same signal
the paper's designers optimised).

Constraints encoded:

- the FIR stage needs a modest decimation (2..16): it provides the sharp
  transition band, and its workload grows linearly with its input rate;
- the CIC5 needs decimation >= 4 for its alias rejection to matter;
- the CIC2 runs at the full input rate, so *some* first-stage decimation
  (>= 2) is strongly preferred — plans without it are admitted but rank
  poorly through the cost model;
- aliasing: each CIC stage must keep its worst-case alias rejection over
  the protected bandwidth above a floor.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from ..config import DDCConfig
from ..dsp.response import alias_rejection
from ..errors import ConfigurationError
from .spec import DDCSpec


@dataclass(frozen=True)
class DecimationPlan:
    """One candidate split of the total decimation."""

    cic2: int
    cic5: int
    fir: int
    cost: float
    alias_rejection_db: float

    @property
    def total(self) -> int:
        """Plan product."""
        return self.cic2 * self.cic5 * self.fir

    def as_tuple(self) -> tuple[int, int, int]:
        """(cic2, cic5, fir)."""
        return (self.cic2, self.cic5, self.fir)


def _divisors(n: int) -> list[int]:
    out = [d for d in range(1, n + 1) if n % d == 0]
    return out


@functools.lru_cache(maxsize=1)
def _planner_cost_model():
    """One stateless cost model per process (rebuilt in pool workers)."""
    from ..archs.asic.lowpower import LowPowerDDCModel

    return LowPowerDDCModel()


def _evaluate_splits(
    spec: DDCSpec,
    min_rejection_db: float,
    fir_taps: int,
    splits: tuple[tuple[int, int, int], ...],
) -> list[DecimationPlan | None]:
    """Cost a chunk of candidate splits through the cost-only batch path.

    Module-level over picklable arguments (the task-descriptor idiom of
    :mod:`repro.parallel`), so plan enumeration can fan out over
    ``backend="process"`` as well as threads.  The chunk's valid
    configurations are costed in one
    ``LowPowerDDCModel.estimate_power_batch`` pass — struct-of-arrays
    end to end: the planner only reads the power column, so no
    :class:`~repro.archs.base.ImplementationReport` is materialised just
    to be thrown away (the batch powers are bit-identical to the
    reports' ``power_w``, pinned by ``tests/test_core.py``) — and
    unmappable splits come back ``None`` exactly like the seed's
    per-split scalar loop.
    """
    plans: list[DecimationPlan | None] = [None] * len(splits)
    prepared: list[tuple[int, DDCConfig, float]] = []
    for k, (cic2, cic5, fir) in enumerate(splits):
        try:
            config = spec.to_config(cic2, cic5, fir, fir_taps)
        except ConfigurationError:
            continue
        rejection = _chain_rejection(config, spec.bandwidth_hz)
        if rejection < min_rejection_db:
            continue
        prepared.append((k, config, rejection))
    if not prepared:
        return plans
    powers, errors = _planner_cost_model().estimate_power_batch(
        [config for _, config, _ in prepared]
    )
    for (k, _, rejection), power, error in zip(prepared, powers, errors):
        if error is not None:  # out of the supported decimation range
            continue
        cic2, cic5, fir = splits[k]
        plans[k] = DecimationPlan(
            cic2, cic5, fir, float(power), rejection
        )
    return plans


def enumerate_plans(
    spec: DDCSpec,
    fir_range: tuple[int, int] = (2, 16),
    min_rejection_db: float = 50.0,
    fir_taps: int = 125,
    workers: int | None = None,
    backend: str = "thread",
) -> list[DecimationPlan]:
    """All valid plans for ``spec``, best (lowest cost) first.

    The candidate splits are costed through the cost-only batch path
    (one struct-of-arrays ``estimate_power_batch`` pass per chunk — no
    per-split report objects); ``workers`` fans contiguous chunks out on
    a pool (``backend`` picks threads or processes; see
    :mod:`repro.parallel` — the chunk evaluator is a picklable task
    descriptor, not a closure).  The result is identical to the serial
    sweep — candidates are generated and kept in deterministic order and
    the final sort is stable.
    """
    from ..parallel import parallel_map

    total = spec.total_decimation
    candidates: list[tuple[int, int, int]] = []
    for fir in _divisors(total):
        if not fir_range[0] <= fir <= fir_range[1]:
            continue
        rest = total // fir
        for cic2 in _divisors(rest):
            cic5 = rest // cic2
            if cic5 < 4:
                continue
            if cic2 > 64 or cic5 > 512:
                continue
            candidates.append((cic2, cic5, fir))

    n_chunks = max(1, min(workers or 1, len(candidates)))
    chunk_size = -(-len(candidates) // n_chunks) if candidates else 1
    chunks = [
        tuple(candidates[i:i + chunk_size])
        for i in range(0, len(candidates), chunk_size)
    ]
    evaluate = functools.partial(
        _evaluate_splits, spec, min_rejection_db, fir_taps
    )
    plans = [
        p
        for chunk_plans in parallel_map(
            evaluate, chunks, workers=workers, backend=backend
        )
        for p in chunk_plans
        if p is not None
    ]
    plans.sort(key=lambda p: p.cost)
    return plans


def _chain_rejection(config: DDCConfig, bandwidth_hz: float) -> float:
    """Worst per-stage alias rejection of the CIC stages, in dB."""
    edge = bandwidth_hz / 2
    worst = float("inf")
    rate = config.input_rate_hz
    for order, decim in (
        (config.cic2_order, config.cic2_decimation),
        (config.cic5_order, config.cic5_decimation),
    ):
        if order == 0 or decim == 1:
            continue
        if edge >= rate / (2 * decim):
            return -float("inf")
        worst = min(worst, alias_rejection(order, decim, rate, edge))
        rate /= decim
    return worst


def plan_decimation(
    spec: DDCSpec,
    min_rejection_db: float = 50.0,
    fir_taps: int = 125,
) -> DecimationPlan:
    """The lowest-cost valid plan (raises if none exists)."""
    plans = enumerate_plans(
        spec, min_rejection_db=min_rejection_db, fir_taps=fir_taps
    )
    if not plans:
        raise ConfigurationError(
            f"no valid decimation plan for total {spec.total_decimation} "
            f"at >= {min_rejection_db} dB rejection"
        )
    return plans[0]
