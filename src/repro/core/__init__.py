"""The generalised "optimal architecture for a DDC" API.

The paper answers one instance of a general question: *given a DDC task
(input rate, output band) and a deployment scenario, which architecture —
and which decimation plan — minimises energy?*  This package exposes that
question as a library:

- :mod:`~repro.core.spec` — :class:`DDCSpec`, the task description;
- :mod:`~repro.core.planner` — search over CIC2/CIC5/FIR decimation splits
  for a total decimation, costed with the ASIC gate-activity model (the
  generalisation of the paper's hand-chosen 16 x 21 x 8);
- :mod:`~repro.core.evaluator` — realise a spec on all five architecture
  models and produce the Table 7-style comparison and the Section 7
  scenario recommendation.
"""

from .spec import DDCSpec
from .planner import DecimationPlan, plan_decimation, enumerate_plans
from .evaluator import (
    DDCEvaluator,
    EvaluationResult,
    ReportCache,
    WorkloadEvaluator,
    config_cache_key,
    default_models,
    shared_evaluator,
    shared_report_cache,
)

__all__ = [
    "DDCSpec",
    "DecimationPlan",
    "plan_decimation",
    "enumerate_plans",
    "DDCEvaluator",
    "EvaluationResult",
    "ReportCache",
    "WorkloadEvaluator",
    "config_cache_key",
    "default_models",
    "shared_evaluator",
    "shared_report_cache",
]
