"""repro — reproduction of *An Optimal Architecture for a DDC* (IPPS 2006).

The package is organised as:

- :mod:`repro.dsp` — the DDC algorithm itself (NCO, mixer, CIC filters,
  polyphase FIR), in gold floating-point and bit-true fixed-point forms;
- :mod:`repro.fixedpoint` — two's-complement arithmetic substrate;
- :mod:`repro.simkernel` — cycle-driven structural hardware simulator;
- :mod:`repro.archs` — executable models of the paper's five target
  architectures (two ASICs, ARM9 GPP, Cyclone FPGA, Montium TP);
- :mod:`repro.energy` — technology scaling and the cross-architecture
  energy comparison;
- :mod:`repro.core` — the generalised "optimal architecture for a DDC"
  planner/evaluator API;
- :mod:`repro.paper` — regeneration of every table and figure in the paper.

Quickstart::

    import numpy as np
    from repro import DDC, REFERENCE_DDC
    from repro.dsp import drm_like_ofdm

    ddc = DDC()
    x = drm_like_ofdm(2688 * 64, REFERENCE_DDC.input_rate_hz,
                      carrier_hz=REFERENCE_DDC.nco_frequency_hz, seed=1)
    out = ddc.process(x)
    print(out.baseband.shape)  # 64 complex samples at 24 kHz
"""

from .config import (
    DDCConfig,
    REFERENCE_DDC,
    GC4016_GSM_EXAMPLE,
    INPUT_RATE_HZ,
    OUTPUT_RATE_HZ,
    TOTAL_DECIMATION,
)
from .errors import (
    ReproError,
    ConfigurationError,
    FixedPointError,
    SimulationError,
    AssemblyError,
    ExecutionError,
    MappingError,
)
from .dsp.ddc import DDC, DDCResult, FixedDDC

__version__ = "1.0.0"

__all__ = [
    "DDC",
    "DDCResult",
    "FixedDDC",
    "DDCConfig",
    "REFERENCE_DDC",
    "GC4016_GSM_EXAMPLE",
    "INPUT_RATE_HZ",
    "OUTPUT_RATE_HZ",
    "TOTAL_DECIMATION",
    "ReproError",
    "ConfigurationError",
    "FixedPointError",
    "SimulationError",
    "AssemblyError",
    "ExecutionError",
    "MappingError",
    "__version__",
]
