"""CLI entry point: ``PYTHONPATH=src python -m repro.bench``.

Runs the DSP/RTL/GPP throughput suite and writes ``BENCH_dsp.json``.
With ``--check`` it instead compares the run against a committed report
and exits non-zero on regression — the CI smoke guard.
"""

from __future__ import annotations

import argparse
import sys

from ..errors import ConfigurationError
from ..telemetry import tracing
from .report import GUARDED_BENCHES, check_regression, load_report, write_report
from .runner import BENCH_NAMES, run_dsp_suite


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Throughput benchmark harness (writes BENCH_dsp.json).",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller inputs / fewer repeats (CI smoke mode)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="print the known bench names (one per line, guarded benches "
        "marked) and exit",
    )
    parser.add_argument(
        "--only", metavar="BENCH[,BENCH...]",
        help="run only the named benches (known: %s); a partial run "
        "writes bench-measured.json unless --output is given explicitly"
        % ", ".join(BENCH_NAMES),
    )
    parser.add_argument(
        "--output", default="BENCH_dsp.json",
        help="report path to write (default: %(default)s)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="compare against a committed report instead of writing; "
        "exits 1 if RTL-DDC throughput regressed beyond --max-regression",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.30,
        help="allowed fractional slowdown in --check mode "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a merged JSONL execution trace with one bench.run "
        "span per bench (wall time, warmup + repeats included); "
        "summarise with `python -m repro.telemetry PATH`",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in BENCH_NAMES:
            suffix = "  [guarded]" if name in GUARDED_BENCHES else ""
            print(f"{name}{suffix}")
        return 0

    only = None
    if args.only:
        only = {b.strip() for b in args.only.split(",") if b.strip()}
        if not only:
            print("--only: no bench names given", file=sys.stderr)
            return 2
        unknown = sorted(only - set(BENCH_NAMES))
        if unknown:
            print(
                f"--only: unknown bench name(s): {', '.join(unknown)} "
                f"(known: {', '.join(BENCH_NAMES)})",
                file=sys.stderr,
            )
            return 2

    committed = None
    if args.check:
        # Validate the baseline before spending minutes measuring.
        try:
            committed = load_report(args.check)
        except (OSError, ValueError, ConfigurationError) as exc:
            print(f"cannot use baseline {args.check}: {exc}", file=sys.stderr)
            return 2

    with tracing(args.trace):
        results = run_dsp_suite(
            quick=args.quick,
            progress=lambda m: print(m, flush=True),
            only=only,
        )

    print()
    for name, r in sorted(results.items()):
        line = f"{name:>10}: {r.samples_per_sec:>14,.0f} samples/s"
        if r.baseline_samples_per_sec:
            line += (
                f"   (baseline {r.baseline_samples_per_sec:>12,.0f},"
                f" speedup {r.speedup:.1f}x)"
            )
        print(line)

    if committed is not None:
        # Write the measured report too (to a separate default name so the
        # committed baseline is never clobbered) — CI publishes it as a
        # workflow artifact, making the perf trajectory inspectable per-PR.
        out = args.output
        if out == "BENCH_dsp.json":
            out = "bench-measured.json"
        write_report(out, results, quick=args.quick)
        print(f"\nwrote {out}")
        guard_names = GUARDED_BENCHES
        if only is not None:
            # A deliberate partial run can only check what it measured.
            guard_names = tuple(b for b in GUARDED_BENCHES if b in only)
        failures = check_regression(
            results, committed,
            names=guard_names, max_regression=args.max_regression,
        )
        if failures:
            print("\nREGRESSION CHECK FAILED:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print(f"regression check against {args.check}: OK")
        return 0

    out = args.output
    if only is not None and out == "BENCH_dsp.json":
        # Never clobber the committed full report with a partial run.
        out = "bench-measured.json"
    write_report(out, results, quick=args.quick)
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
