"""Benchmark runner: times the bit-true stack and reports samples/second.

Each bench is a closure over a prepared input block; :func:`time_fn` runs
it ``repeats`` times after a warmup and keeps the *best* wall-clock time
(the standard way to suppress scheduler noise on shared machines).  Where a
seed-equivalent slow path still exists in-tree — the cycle-accurate RTL
run and the uncompiled per-cycle ``Simulator`` loop — it is measured too
and reported as the ``baseline``, so the JSON records a true before/after
pair instead of a single unanchored number.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .. import telemetry
from ..config import REFERENCE_DDC
from ..dsp.cic import FixedCICDecimator
from ..dsp.ddc import DDC, FixedDDC
from ..dsp.fir import FixedPolyphaseDecimator
from ..dsp.firdesign import quantize_taps, reference_fir_taps
from ..dsp.nco import NCO
from ..dsp.signals import quantize_to_adc, tone
from ..simkernel import ClockDomain, Component, Simulator, Wire

#: The reference bench input: 32 full output periods, ~86k ADC samples.
FULL_SAMPLES = 2688 * 32
QUICK_SAMPLES = 2688 * 4

#: Every bench name the suite can produce (validates ``--only``).
BENCH_NAMES = (
    "nco",
    "cic",
    "fir",
    "ddc_gold",
    "fixed_ddc",
    "rtl_ddc",
    "sim_step",
    "gpp_ddc",
    "montium_ddc",
    "scenario_sweep",
    "evaluator_batch",
    "explore_frontier",
    "sweep_faulty",
    "drm_sweep",
    "ofdm_sweep",
    "montecarlo_population",
)


@dataclass
class BenchResult:
    """Throughput of one bench, with an optional seed-path baseline."""

    name: str
    samples_per_sec: float
    seconds: float
    repeats: int
    n_samples: int
    baseline_samples_per_sec: float | None = None
    baseline_seconds: float | None = None
    notes: str = ""

    @property
    def speedup(self) -> float | None:
        """Throughput ratio vs the measured seed-equivalent path."""
        if not self.baseline_samples_per_sec:
            return None
        return self.samples_per_sec / self.baseline_samples_per_sec

    def to_json(self) -> dict:
        out = {
            "samples_per_sec": round(self.samples_per_sec, 3),
            "seconds": self.seconds,
            "repeats": self.repeats,
            "n_samples": self.n_samples,
        }
        if self.baseline_samples_per_sec is not None:
            out["baseline_samples_per_sec"] = round(
                self.baseline_samples_per_sec, 3
            )
            out["baseline_seconds"] = self.baseline_seconds
            out["speedup"] = round(self.speedup, 3)  # type: ignore[arg-type]
        if self.notes:
            out["notes"] = self.notes
        return out


def time_fn(fn, repeats: int = 5, warmup: int = 1) -> float:
    """Best wall-clock seconds of ``fn()`` over ``repeats`` runs."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# --------------------------------------------------------------- the suite
class _StepPlayer(Component):
    """Microbench component: a free-running counter on one bus.

    The output wire is cached and driven directly (no per-tick port
    lookup) so the bench isolates the scheduler + commit overhead that
    ``Simulator.step`` is responsible for.
    """

    def __init__(self, name: str, out: Wire) -> None:
        super().__init__(name)
        self._q = self.add_output("q", out)
        self._mask = (1 << (out.width - 1)) - 1

    def tick(self, cycle: int) -> None:
        self._q.drive(cycle & self._mask, self.name)


def _build_step_sim(n_chains: int = 8, n_idle: int = 24) -> Simulator:
    """A design with the RTL top level's shape: ~9 components, ~30 wires.

    The idle wires stand in for probe/valid buses that are only driven on
    a fraction of cycles — the commit-dominated regime the compiled fast
    path targets.
    """
    sim = Simulator(ClockDomain("clk", 64.512e6))
    for k in range(n_chains):
        sim.add(_StepPlayer(f"p{k}", sim.wire(f"w{k}", 16)))
    for k in range(n_idle):
        sim.wire(f"idle{k}", 16)
    return sim


def _seed_commit(w: Wire) -> None:
    """The seed's Wire.commit: unconditional mask/XOR/popcount per cycle."""
    new = w.value if w._next is None else w._next
    mask = (1 << w.width) - 1
    diff = (w.value ^ new) & mask
    w.toggles += diff.bit_count()
    w.commits += 1
    w.value = new
    w._next = None
    w._driver = None


def _seed_step(sim: Simulator, cycles: int) -> None:
    """The seed scheduler's per-cycle dict-iteration loop, for baselines."""
    for _ in range(cycles):
        for comp in sim._components.values():
            comp.tick(sim.cycle)
        for w in sim._wires.values():
            _seed_commit(w)
        sim.cycle += 1


def run_dsp_suite(
    quick: bool = False, progress=None, only: set[str] | None = None
) -> dict[str, BenchResult]:
    """Run every bench; returns results keyed by bench name.

    ``only`` restricts the run to the named benches (see
    :data:`BENCH_NAMES`); ``None`` runs everything.
    """
    from ..archs.fpga.rtl_ddc import RTLDDC
    from ..archs.gpp.profiler import profile_ddc

    if only is not None:
        unknown = sorted(set(only) - set(BENCH_NAMES))
        if unknown:
            from ..errors import ConfigurationError

            raise ConfigurationError(
                f"unknown bench name(s): {', '.join(unknown)} "
                f"(expected among {', '.join(BENCH_NAMES)})"
            )

    # Per-bench wall-time spans: ``want(name)`` is called once at the
    # top of every bench block in suite order, so each call closes the
    # previous bench's span and opens the next.  ``record_span`` emits
    # retroactively from the measured interval — when telemetry is
    # disabled the tracker stays empty and nothing is timed.
    _active: list[tuple[str, float, float]] = []

    def _close_bench() -> None:
        if _active:
            bench, t0, p0 = _active.pop()
            telemetry.record_span(
                "bench.run", t0, time.perf_counter() - p0, bench=bench
            )

    def want(name: str) -> bool:
        run = only is None or name in only
        _close_bench()
        if run and telemetry.enabled():
            _active.append((name, time.time(), time.perf_counter()))
        return run

    n = QUICK_SAMPLES if quick else FULL_SAMPLES
    # The vectorised benches cost milliseconds: many repeats (best-of) cost
    # nothing and keep the committed before/after pairs out of the noise.
    repeats = 3 if quick else 15
    cfg = REFERENCE_DDC
    # The guarded rtl_ddc block bench always runs on the full 86k reference
    # input so quick-mode CI numbers stay comparable to the committed file;
    # quick mode only shortens the unguarded benches and the slow
    # cycle-accurate baseline.
    xf_full = tone(
        FULL_SAMPLES, cfg.nco_frequency_hz + 5e3, cfg.input_rate_hz, 0.8
    )
    adc_full = quantize_to_adc(xf_full, 12)
    xf = xf_full[:n]
    adc = adc_full[:n]
    results: dict[str, BenchResult] = {}

    def say(msg: str) -> None:
        if progress is not None:
            progress(msg)

    def add(
        name: str,
        fn,
        n_samples: int,
        reps: int = repeats,
        baseline_fn=None,
        **kw,
    ) -> None:
        say(f"bench {name} ...")
        secs = time_fn(fn, repeats=reps)
        if baseline_fn is not None:
            base = time_fn(baseline_fn, repeats=reps)
            kw.setdefault("baseline_samples_per_sec", n_samples / base)
            kw.setdefault("baseline_seconds", base)
        results[name] = BenchResult(
            name=name,
            samples_per_sec=n_samples / secs,
            seconds=secs,
            repeats=reps,
            n_samples=n_samples,
            **kw,
        )

    from .seed_paths import seed_fixed_cic_process, seed_fixed_fir_process

    # The five streaming benches below are guarded (GUARDED_BENCHES), so
    # they always run the full reference input even in --quick: quick-mode
    # CI numbers must stay comparable to the committed file.  All are
    # vectorised and cost milliseconds.  The fast path is the fused kernel
    # tier (what auto dispatch picks on a numba-free install); baselines
    # are frozen seed loops, pinned in seed_paths so later optimisation of
    # the live primitives cannot drift them.
    if want("nco"):
        nco = NCO(cfg.input_rate_hz, cfg.nco_frequency_hz)
        nco_seed = NCO(cfg.input_rate_hz, cfg.nco_frequency_hz)
        add("nco", lambda: nco.generate(FULL_SAMPLES, engine="fused"),
            FULL_SAMPLES,
            baseline_fn=lambda: nco_seed.generate(
                FULL_SAMPLES, engine="python"
            ),
            notes="vectorised LUT NCO, fused shift/mask kernel; baseline "
            "= the python oracle (unchanged since seed)")

    if want("cic"):
        cic = FixedCICDecimator(2, 16, input_width=12)
        cic_seed = FixedCICDecimator(2, 16, input_width=12)
        add("cic", lambda: cic.process(adc_full, engine="fused"),
            FULL_SAMPLES,
            baseline_fn=lambda: seed_fixed_cic_process(cic_seed, adc_full),
            notes="FixedCICDecimator(2,16), fused int32 in-place kernel; "
            "baseline = frozen seed loop")

    taps = reference_fir_taps()
    raw, fmt = quantize_taps(taps, 12)
    if want("fir"):
        # A realistic streaming block at the 384 kHz FIR stage rate.  The
        # seed harness used 500 samples, which is per-call-overhead
        # dominated (~45 us both paths) and made the pair noise; 10752
        # samples puts both loops firmly in the vectorised regime.
        fir_in = adc_full[: FULL_SAMPLES // 8]
        fir = FixedPolyphaseDecimator(raw, 8, output_shift=max(0, fmt.frac))
        fir_seed = FixedPolyphaseDecimator(
            raw, 8, output_shift=max(0, fmt.frac)
        )
        add("fir", lambda: fir.process(fir_in, engine="fused"), len(fir_in),
            baseline_fn=lambda: seed_fixed_fir_process(fir_seed, fir_in),
            notes="FixedPolyphaseDecimator at the 384 kHz stage rate, "
            "fused strided-window kernel over a 10752-sample streaming "
            "block; baseline = frozen seed loop")

    if want("ddc_gold"):
        gold = DDC(cfg)
        add("ddc_gold", lambda: gold.process(xf), n,
            notes="float64 gold model")

    if want("fixed_ddc"):
        fixed = FixedDDC(cfg)
        adc32 = adc_full.astype(np.int32)  # forces the seed's input copy
        fixed_seed = FixedDDC(cfg)
        add("fixed_ddc",
            lambda: fixed.process(adc_full, engine="fused"), FULL_SAMPLES,
            baseline_fn=lambda: fixed_seed.process(adc32, engine="python"),
            notes="bit-true DDC, fused end-to-end kernel (integer-LUT "
            "mixer + int32 CIC rails + strided FIR); baseline = the "
            "python oracle with the seed's input copy re-added")

    # RTL DDC: the block engine vs the seed cycle-accurate path.  The
    # cycle baseline is throughput-linear in the input length, so quick
    # mode may shorten it; the block measurement always uses the full
    # reference input (see above).
    if want("rtl_ddc"):
        say("bench rtl_ddc (cycle-accurate baseline, slow) ...")
        rtl = RTLDDC(cfg)
        base_secs = time_fn(
            lambda: (rtl.reset(), rtl.run(adc))[1], repeats=1, warmup=0
        )
        rtl_b = RTLDDC(cfg)
        say("bench rtl_ddc (block mode) ...")
        rtl_reps = min(7, max(3, repeats))
        blk_secs = time_fn(
            lambda: (rtl_b.reset(), rtl_b.run(adc_full, engine="block"))[1],
            repeats=rtl_reps,
        )
        results["rtl_ddc"] = BenchResult(
            name="rtl_ddc",
            samples_per_sec=FULL_SAMPLES / blk_secs,
            seconds=blk_secs,
            repeats=rtl_reps,
            n_samples=FULL_SAMPLES,
            baseline_samples_per_sec=n / base_secs,
            baseline_seconds=base_secs,
            notes="block mode vs cycle-accurate, both with activity tracking",
        )

    # Simulator.step microkernel: the code-generated fused step loop vs
    # the seed dict loop.  Guarded, so the fast measurement always runs
    # the full cycle count; the seed baseline is throughput-linear in
    # cycles and may be shortened in quick mode.
    if want("sim_step"):
        step_cycles = 20_000
        base_cycles = 2_000 if quick else step_cycles
        step_reps = min(7, repeats)
        sim_fast = _build_step_sim()
        sim_fast.compile(engine="fused")
        say("bench sim_step ...")
        fast_secs = time_fn(
            lambda: sim_fast.step(step_cycles), repeats=step_reps
        )
        sim_ref = _build_step_sim()
        ref_secs = time_fn(
            lambda: _seed_step(sim_ref, base_cycles), repeats=step_reps
        )
        results["sim_step"] = BenchResult(
            name="sim_step",
            samples_per_sec=step_cycles / fast_secs,
            seconds=fast_secs,
            repeats=step_reps,
            n_samples=step_cycles,
            baseline_samples_per_sec=base_cycles / ref_secs,
            baseline_seconds=ref_secs,
            notes="cycles/sec, 8-component design; generated inline-latch "
            "step loop vs the seed per-cycle dict loop",
        )

    # GPP: the instruction-set simulation of the generated DDC program.
    # The trace-compiled engine runs the full 2688-sample steady-state
    # block even in quick mode (the seed could only afford 336 there);
    # the baseline is the seed interpreter over the *same* input.
    if want("gpp_ddc"):
        gpp_n = 2688
        say("bench gpp_ddc (vectorised kernel) ...")
        gpp_reps = 3 if quick else 7
        gpp_secs = time_fn(
            lambda: profile_ddc(n_samples=gpp_n, engine="auto"),
            repeats=gpp_reps,
        )
        say("bench gpp_ddc (seed interpreter baseline, slow) ...")
        gpp_base = time_fn(
            lambda: profile_ddc(n_samples=gpp_n, engine="interp"),
            repeats=1, warmup=0,
        )
        results["gpp_ddc"] = BenchResult(
            name="gpp_ddc",
            samples_per_sec=gpp_n / gpp_secs,
            seconds=gpp_secs,
            repeats=gpp_reps,
            n_samples=gpp_n,
            baseline_samples_per_sec=gpp_n / gpp_base,
            baseline_seconds=gpp_base,
            notes="ARM-like ISS executing the generated I-rail DDC program; "
            "trace-compiled engine vs the seed per-instruction interpreter",
        )

    # Montium: the tile DDC mapping, block engine vs the stepped tile.
    # Like rtl_ddc, the guarded block measurement always runs the full
    # reference input so quick-mode CI numbers stay comparable to the
    # committed file; quick mode only shortens the slow stepped baseline
    # (throughput there is length-independent).
    if want("montium_ddc"):
        from ..archs.montium import run_ddc_on_tile

        mont_n = 2688 * 8
        mont_x = adc_full[:mont_n]
        mont_base_x = adc_full[: 2688 if quick else mont_n]
        say("bench montium_ddc (block engine) ...")
        mont_reps = 3 if quick else 7
        mont_secs = time_fn(
            lambda: run_ddc_on_tile(mont_x, cfg, engine="block"),
            repeats=mont_reps,
        )
        say("bench montium_ddc (stepped tile baseline, slow) ...")
        mont_base = time_fn(
            lambda: run_ddc_on_tile(mont_base_x, cfg, engine="step"),
            repeats=1, warmup=0,
        )
        results["montium_ddc"] = BenchResult(
            name="montium_ddc",
            samples_per_sec=mont_n / mont_secs,
            seconds=mont_secs,
            repeats=mont_reps,
            n_samples=mont_n,
            baseline_samples_per_sec=len(mont_base_x) / mont_base,
            baseline_seconds=mont_base,
            notes="Montium tile DDC mapping; vectorised block engine vs the "
            "per-cycle stepped tile",
        )

    # Scenario sweep: the batched duty-cycle x candidate grid of the
    # repro.sweep subsystem vs the scalar Section 7 loop it replaced.
    # Units are grid cells (duty cycle x candidate) per second.  The
    # guarded batched measurement always runs the full 20001-step Table 7
    # grid so quick-mode CI numbers stay comparable to the committed
    # file; quick mode only shortens the scalar baseline (its throughput
    # is step-count independent).
    if want("scenario_sweep"):
        from ..core.evaluator import DDCEvaluator
        from ..sweep import duty_cycle_grid

        say("bench scenario_sweep (batched grid) ...")
        analysis = DDCEvaluator().scenario_analysis(cfg)
        sweep_steps = 20_001
        n_cand = len(analysis.candidates)
        sweep_reps = min(7, repeats)
        sweep_secs = time_fn(
            lambda: duty_cycle_grid(analysis, sweep_steps).winners(),
            repeats=sweep_reps,
        )
        say("bench scenario_sweep (scalar loop baseline) ...")
        base_steps = 2_001 if quick else sweep_steps
        sweep_base = time_fn(
            lambda: [
                analysis.evaluate(i / (base_steps - 1))
                for i in range(base_steps)
            ],
            repeats=3,
        )
        results["scenario_sweep"] = BenchResult(
            name="scenario_sweep",
            samples_per_sec=sweep_steps * n_cand / sweep_secs,
            seconds=sweep_secs,
            repeats=sweep_reps,
            n_samples=sweep_steps * n_cand,
            baseline_samples_per_sec=base_steps * n_cand / sweep_base,
            baseline_seconds=sweep_base,
            notes="Table 7 duty-cycle x candidate grid (cells/sec); batched "
            "evaluate_batch + winner extraction vs the scalar "
            "ScenarioAnalysis.evaluate loop",
        )

    # Architecture-model layer: implement_batch over a Table 7 config grid
    # vs the scalar implement loop (the implement_batch_scalar oracle).
    # Units are implementation reports (config x model) per second; both
    # paths run uncached so the pair isolates the batched model layer
    # itself, not the report cache.  The guarded batched measurement
    # always runs the full grid so quick-mode CI numbers stay comparable
    # to the committed file; quick mode only shortens the slow scalar
    # baseline (its throughput is grid-size independent).
    if want("evaluator_batch"):
        import dataclasses

        say("bench evaluator_batch (batched model layer) ...")
        eval_grid = [
            dataclasses.replace(cfg, data_width=w) for w in range(8, 16)
        ]
        models = DDCEvaluator().models
        n_reports = len(eval_grid) * len(models)
        eval_reps = 3 if quick else min(7, repeats)
        eval_secs = time_fn(
            lambda: [m.implement_batch(eval_grid) for m in models],
            repeats=eval_reps,
        )
        say("bench evaluator_batch (scalar model loop baseline, slow) ...")
        base_grid = eval_grid[:2] if quick else eval_grid
        eval_base = time_fn(
            lambda: [m.implement_batch_scalar(base_grid) for m in models],
            repeats=1, warmup=0,
        )
        results["evaluator_batch"] = BenchResult(
            name="evaluator_batch",
            samples_per_sec=n_reports / eval_secs,
            seconds=eval_secs,
            repeats=eval_reps,
            n_samples=n_reports,
            baseline_samples_per_sec=len(base_grid) * len(models) / eval_base,
            baseline_seconds=eval_base,
            notes="Table 7 data-width config grid x all six architecture "
            "models (reports/sec); implement_batch (analytic ARM profile, "
            "deduped Montium schedules, vectorised power arithmetic) vs the "
            "scalar implement loop",
        )

    # Design-space exploration: adaptive refinement vs the dense scalar
    # oracle on the reference input-rate space.  Units are delivered
    # target-resolution cells per second — both engines answer for every
    # cell; the adaptive engine just evaluates far fewer of them (and
    # batches what it does evaluate).  Fresh evaluators/caches per run
    # keep the pair honest (no report-cache carry-over between repeats).
    # The guarded adaptive measurement always runs the full reference
    # space; quick mode only shortens the slow dense baseline (its
    # cells/sec throughput is resolution-independent).
    if want("explore_frontier"):
        from ..core.evaluator import ReportCache
        from ..explore import ExploreSpec, run_explore

        say("bench explore_frontier (adaptive engine) ...")
        explore_spec = ExploreSpec()
        exp_reps = 3 if quick else min(7, repeats)
        exp_secs = time_fn(
            lambda: run_explore(
                explore_spec, "adaptive", DDCEvaluator(cache=ReportCache())
            ),
            repeats=exp_reps,
        )
        say("bench explore_frontier (dense scalar oracle baseline, slow) ...")
        base_spec = (
            ExploreSpec(target_steps=17) if quick else explore_spec
        )
        exp_base = time_fn(
            lambda: run_explore(base_spec, "dense", DDCEvaluator()),
            repeats=1, warmup=0,
        )
        results["explore_frontier"] = BenchResult(
            name="explore_frontier",
            samples_per_sec=explore_spec.n_cells / exp_secs,
            seconds=exp_secs,
            repeats=exp_reps,
            n_samples=explore_spec.n_cells,
            baseline_samples_per_sec=base_spec.n_cells / exp_base,
            baseline_seconds=exp_base,
            notes="reference input-rate design space, target cells/sec; "
            "adaptive refinement (batched model passes, vectorised Pareto) "
            "vs the dense scalar-oracle grid",
        )

    # Fault-tolerant sweep: the same batched scenario grid with a
    # transient injected failure recovered by on_error="retry", against
    # the fault-free strict run.  Units are grid cells (duty cycle x
    # point) per second; the pair prices the resilience layer itself —
    # the fault_point probes on the hot path plus one retried point —
    # so a regression here means recovery got expensive, not the sweep.
    # A fresh inject() per timed run resets the firing counters, keeping
    # every repeat deterministic (exactly one injected failure each).
    if want("sweep_faulty"):
        from .. import faults
        from ..sweep import SweepSpec, run_sweep

        say("bench sweep_faulty (retry recovery under injection) ...")
        faulty_spec = SweepSpec.from_axes(
            {"fir_taps": (63, 127, 255)},
            duty_cycle_steps=2_001,
            on_error="retry",
        )
        fault_plan = faults.FaultPlan(
            (faults.FaultSpec("sweep.point", keys=(1,)),)
        )

        def _run_faulty():
            with faults.inject(fault_plan):
                run_sweep(faulty_spec)

        faulty_reps = 3 if quick else min(7, repeats)
        faulty_secs = time_fn(_run_faulty, repeats=faulty_reps)
        say("bench sweep_faulty (fault-free strict baseline) ...")
        strict_spec = SweepSpec.from_axes(
            {"fir_taps": (63, 127, 255)}, duty_cycle_steps=2_001
        )
        strict_secs = time_fn(
            lambda: run_sweep(strict_spec), repeats=faulty_reps
        )
        results["sweep_faulty"] = BenchResult(
            name="sweep_faulty",
            samples_per_sec=faulty_spec.n_grid_cells / faulty_secs,
            seconds=faulty_secs,
            repeats=faulty_reps,
            n_samples=faulty_spec.n_grid_cells,
            baseline_samples_per_sec=strict_spec.n_grid_cells / strict_secs,
            baseline_seconds=strict_secs,
            notes="fir_taps sweep (cells/sec) with one injected point "
            "failure recovered under on_error=retry vs the fault-free "
            "strict sweep; prices the fault_point probes + one retry",
        )

    # Workload sweeps: each non-default workload's scenario grid through
    # the batch engine (cache cleared per repetition, so the number is
    # model evaluation + grid math, not cache hits) vs the scalar
    # oracle path over the same spec.
    for wl_name in ("drm", "ofdm"):
        bench_name = f"{wl_name}_sweep"
        if not want(bench_name):
            continue
        from ..sweep import SweepSpec, run_sweep
        from ..workloads import get as get_workload

        workload = get_workload(wl_name)
        wl_spec = SweepSpec.from_axes(
            dict(workload.scenario_axes()),
            duty_cycle_steps=2_001,
            workload=wl_name,
        )
        cache = workload.shared_evaluator().cache

        def _run_wl(spec=wl_spec, cache=cache):
            cache.clear()
            return run_sweep(spec, engine="batch")

        say(f"bench {bench_name} (batch engine) ...")
        wl_reps = 3 if quick else min(7, repeats)
        wl_secs = time_fn(_run_wl, repeats=wl_reps)
        say(f"bench {bench_name} (scalar oracle baseline) ...")
        wl_base = time_fn(
            lambda spec=wl_spec: run_sweep(spec, engine="scalar"),
            repeats=wl_reps,
        )
        results[bench_name] = BenchResult(
            name=bench_name,
            samples_per_sec=wl_spec.n_grid_cells / wl_secs,
            seconds=wl_secs,
            repeats=wl_reps,
            n_samples=wl_spec.n_grid_cells,
            baseline_samples_per_sec=wl_spec.n_grid_cells / wl_base,
            baseline_seconds=wl_base,
            notes=f"{wl_name} workload scenario grid (cells/sec), batch "
            "engine with the report cache cleared per repetition vs the "
            "scalar oracle over the same spec",
        )

    # Population Monte-Carlo: a 10^6-user ddc population through the
    # vectorised engine (dedup to distinct configs + chunked fused
    # streaming pass, report cache cleared per repetition) vs the
    # per-sample scalar oracle loop — the naive seed-API program: one
    # dataclasses.replace + scenario_candidates + ScenarioAnalysis
    # .evaluate per user.  Units are population samples per second; the
    # scalar loop's rate is population-size independent, so its
    # measurement runs a much smaller population (and quick mode only
    # shortens that slow baseline).  The guarded vector measurement
    # always runs the full million samples so quick-mode CI numbers
    # stay comparable to the committed file.
    if want("montecarlo_population"):
        from ..montecarlo import PopulationSpec, run_population
        from ..workloads import get as get_workload

        mc_spec = PopulationSpec(workload="ddc", n_samples=1_000_000, seed=7)
        mc_base_spec = PopulationSpec(workload="ddc", n_samples=10_000, seed=7)
        mc_cache = get_workload("ddc").shared_evaluator().cache

        def _run_mc(spec=mc_spec, cache=mc_cache):
            cache.clear()
            return run_population(spec)

        say("bench montecarlo_population (vector engine, 10^6 users) ...")
        mc_reps = 3 if quick else min(7, repeats)
        mc_secs = time_fn(_run_mc, repeats=mc_reps)
        say("bench montecarlo_population (scalar oracle baseline, slow) ...")
        mc_base = time_fn(
            lambda: run_population(mc_base_spec, engine="scalar"),
            repeats=1, warmup=0,
        )
        results["montecarlo_population"] = BenchResult(
            name="montecarlo_population",
            samples_per_sec=mc_spec.n_samples / mc_secs,
            seconds=mc_secs,
            repeats=mc_reps,
            n_samples=mc_spec.n_samples,
            baseline_samples_per_sec=mc_base_spec.n_samples / mc_base,
            baseline_seconds=mc_base,
            notes="10^6-user ddc population (samples/sec); deduplicating "
            "chunked vector engine (cache cleared per repetition) vs the "
            "per-sample scalar oracle loop on 10^4 users (its rate is "
            "size-independent); both include sampling, model evaluation "
            "and winner/percentile aggregation",
        )
    _close_bench()
    return results
