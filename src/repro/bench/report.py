"""JSON reporting and regression checking for the benchmark harness.

``BENCH_dsp.json`` schema (``repro-bench-dsp/v1``)::

    {
      "schema": "repro-bench-dsp/v1",
      "quick": false,
      "n_samples": 86016,
      "benches": {
        "<name>": {
          "samples_per_sec": <after: the fast path measured now>,
          "seconds": ..., "repeats": ..., "n_samples": ...,
          "baseline_samples_per_sec": <before: seed-equivalent path,
                                       when one still exists in-tree>,
          "baseline_seconds": ..., "speedup": ..., "notes": "..."
        }, ...
      }
    }

The committed file is the perf trajectory's baseline: regenerating it and
diffing shows the before/after of any perf PR, and
:func:`check_regression` lets CI fail when a hot path gets slower.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import ConfigurationError
from .runner import BenchResult

SCHEMA = "repro-bench-dsp/v1"


def write_report(
    path: str | Path, results: dict[str, BenchResult], quick: bool
) -> dict:
    """Serialise bench results to ``path``; returns the written document."""
    doc = {
        "schema": SCHEMA,
        "quick": quick,
        "n_samples": max((r.n_samples for r in results.values()), default=0),
        "benches": {name: r.to_json() for name, r in results.items()},
    }
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def load_report(path: str | Path) -> dict:
    """Load and validate a previously written report."""
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != SCHEMA:
        raise ConfigurationError(
            f"{path}: unknown bench schema {doc.get('schema')!r}"
        )
    return doc


#: Benches guarded by CI: the streaming DSP front end's compiled kernel
#: tier (nco/cic/fir/fixed_ddc and the generated ``Simulator.step``
#: loop), every architecture's fast path, the batched scenario-sweep
#: grid of ``repro.sweep``, the batched architecture-model layer
#: (``implement_batch`` vs the scalar loop), the adaptive design-space
#: explorer of ``repro.explore``, the fault-tolerant sweep path
#: (retry recovery under injection), the non-default workloads'
#: scenario grids (``repro.workloads``) and the population Monte-Carlo
#: engine (``repro.montecarlo``).
GUARDED_BENCHES = (
    "nco",
    "cic",
    "fir",
    "fixed_ddc",
    "sim_step",
    "rtl_ddc",
    "gpp_ddc",
    "montium_ddc",
    "scenario_sweep",
    "evaluator_batch",
    "explore_frontier",
    "sweep_faulty",
    "drm_sweep",
    "ofdm_sweep",
    "montecarlo_population",
)


def check_regression(
    results: dict[str, BenchResult],
    committed: dict,
    names: tuple[str, ...] = GUARDED_BENCHES,
    max_regression: float = 0.30,
) -> list[str]:
    """Compare current throughput against the committed baseline file.

    Returns a list of human-readable failure strings (empty = pass).  A
    bench fails when its current samples/sec falls more than
    ``max_regression`` below the committed value; missing benches on
    either side are reported as failures too, so the guard cannot rot
    silently.

    Absolute samples/sec depends on the machine; the committed file may
    come from different hardware than a CI runner.  When both sides also
    carry a measured ``speedup`` (fast path vs the seed baseline timed in
    the *same* run, which cancels machine speed), a bench whose absolute
    number regressed but whose speedup held is treated as a slow machine,
    not a code regression.
    """
    failures: list[str] = []
    benches = committed.get("benches", {})
    for name in names:
        if name not in results:
            failures.append(f"{name}: not measured by this run")
            continue
        if name not in benches:
            failures.append(f"{name}: missing from committed baseline")
            continue
        ref = float(benches[name]["samples_per_sec"])
        cur = results[name].samples_per_sec
        floor = (1.0 - max_regression) * ref
        if cur >= floor:
            continue
        ref_speedup = benches[name].get("speedup")
        cur_speedup = results[name].speedup
        if ref_speedup and cur_speedup:
            if cur_speedup >= (1.0 - max_regression) * float(ref_speedup):
                continue  # machine-normalised ratio held: not a regression
        failures.append(
            f"{name}: {cur:,.0f} samples/s is >"
            f"{max_regression:.0%} below the committed "
            f"{ref:,.0f} samples/s"
        )
    return failures
