"""Persistent throughput benchmark harness.

The paper's product is a quantitative architecture comparison, so the
repository's own execution speed is a tracked artefact: ``BENCH_dsp.json``
at the repo root records samples-per-second for every stage of the
bit-true stack (NCO, CIC, FIR, FixedDDC, gold DDC, the RTL DDC in both
cycle-accurate and block mode, the GPP instruction-set simulation in both
interpreted and trace-compiled form, the Montium tile in stepped and
block form, and the ``Simulator.step`` microkernel).  Future PRs
regenerate the file with

    PYTHONPATH=src python -m repro.bench

and CI guards every architecture fast path (``rtl_ddc``, ``gpp_ddc``,
``montium_ddc``) against >30 % regressions with
``python -m repro.bench --quick --check BENCH_dsp.json``.

See ``benchmarks/README.md`` for the JSON schema and usage guide.
"""

from .report import check_regression, load_report, write_report
from .runner import BenchResult, run_dsp_suite, time_fn

__all__ = [
    "BenchResult",
    "run_dsp_suite",
    "time_fn",
    "write_report",
    "load_report",
    "check_regression",
]
