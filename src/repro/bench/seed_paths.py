"""Frozen seed-revision hot loops, kept only to anchor before/after pairs.

The live :mod:`repro.dsp` kernels evolve PR over PR; these functions are
verbatim copies of the *seed commit's* ``process`` bodies (redundant
``astype`` copies, history-buffer copies, no in-place integrator adds) so
``BENCH_dsp.json`` can report a measured "before" next to every "after"
even once the original code is long gone.  They operate on a live filter
instance's state and must never be used outside the benchmark harness —
they are baselines, not supported implementations.
"""

from __future__ import annotations

import numpy as np

from ..dsp.cic import FixedCICDecimator
from ..dsp.fir import FixedPolyphaseDecimator
from ..fixedpoint import QFormat


# The seed loops must also pin the *fixed-point primitives* they called:
# the live ``repro.fixedpoint.ops`` versions get optimised too (wrap is a
# two-pass shift/mask now), and importing them here would silently speed
# up the "before" measurement.  Verbatim seed copies:

def _seed_saturate(raw: np.ndarray, fmt: QFormat) -> np.ndarray:
    arr = np.asarray(raw).astype(np.int64, copy=False)
    return np.clip(arr, fmt.min_raw, fmt.max_raw)


def _seed_wrap(raw: np.ndarray, fmt: QFormat) -> np.ndarray:
    arr = np.asarray(raw).astype(np.int64, copy=False)
    if fmt.width >= 64:
        return arr.copy()
    modulus = np.int64(1) << fmt.width
    half = np.int64(1) << (fmt.width - 1)
    wrapped = np.bitwise_and(arr, modulus - 1)
    return np.where(wrapped >= half, wrapped - modulus, wrapped).astype(np.int64)


def _seed_quantize_truncate(raw: np.ndarray, shift: int) -> np.ndarray:
    arr = np.asarray(raw).astype(np.int64, copy=False)
    if shift == 0:
        return arr.copy()
    return arr >> shift


def seed_fixed_cic_process(cic: FixedCICDecimator, x: np.ndarray) -> np.ndarray:
    """The seed's FixedCICDecimator.process (out-of-place integrator adds)."""
    x = np.asarray(x)
    x = x.astype(np.int64, copy=False)
    if x.size == 0:
        return np.empty(0, dtype=np.int64)
    in_fmt = QFormat(cic.input_width, 0)
    assert in_fmt.min_raw <= int(x.min()) and int(x.max()) <= in_fmt.max_raw
    internal = cic.internal_format
    with np.errstate(over="ignore"):
        y = x
        for s in range(cic.order):
            y = np.cumsum(y)
            y = y + cic._int_state[s]
            y = _seed_wrap(y, internal)
            cic._int_state[s] = y[-1]

        first = (-cic._phase) % cic.decimation
        kept = y[first :: cic.decimation]
        cic._phase = (cic._phase + len(x)) % cic.decimation

        z = kept
        for s in range(cic.order):
            with_hist = np.concatenate([cic._comb_state[s], z])
            out = with_hist[cic.diff_delay :] - with_hist[: -cic.diff_delay]
            out = _seed_wrap(out, internal)
            if len(with_hist) >= cic.diff_delay:
                cic._comb_state[s] = with_hist[
                    len(with_hist) - cic.diff_delay :
                ]
            z = out
    return _seed_quantize_truncate(z, cic.truncation_shift)


def seed_fixed_fir_process(
    fir: FixedPolyphaseDecimator, x: np.ndarray
) -> np.ndarray:
    """The seed's FixedPolyphaseDecimator.process (copying astype + hist)."""
    x = np.asarray(x)
    x = x.astype(np.int64)  # the seed always copied here
    if x.size == 0:
        return np.empty(0, dtype=np.int64)
    dfmt = QFormat(fir.data_width, 0)
    assert dfmt.min_raw <= int(x.min()) and int(x.max()) <= dfmt.max_raw

    buf = np.concatenate([fir._hist, x])
    hist_len = len(fir._hist)
    first_out = (-fir._offset) % fir.decimation
    out_positions = np.arange(first_out, len(x), fir.decimation)
    n_taps = len(fir.taps_raw)
    if out_positions.size:
        idx = out_positions[:, None] + hist_len - np.arange(n_taps)[None, :]
        windows = buf[idx]
        acc = windows @ fir.taps_raw
        acc = _seed_saturate(acc, fir.accumulator_format)
        y = _seed_quantize_truncate(acc, fir.output_shift)
        y = _seed_saturate(y, fir.output_format)
    else:
        y = np.empty(0, dtype=np.int64)

    fir._offset = (fir._offset + len(x)) % fir.decimation
    if n_taps > 1:
        fir._hist = buf[len(buf) - (n_taps - 1) :].copy()  # seed always copied
    else:
        fir._hist = np.empty(0, dtype=np.int64)
    return y
