"""Deterministic parallel mapping for sweep workloads.

The Table 5 power sweep, the decimation-plan enumeration and the ablation
benches are embarrassingly parallel: independent evaluations of a pure
function over a parameter grid.  :func:`parallel_map` gives them a shared
``workers=`` knob backed by :class:`concurrent.futures.ThreadPoolExecutor`.

Guarantees:

- **Deterministic ordering** — results come back in input order
  (``Executor.map`` semantics), so a parallel sweep is byte-identical to
  the serial one regardless of completion order;
- ``workers=None`` or ``workers=1`` runs serially in the caller's thread
  (no executor, no thread-switch overhead) — the default everywhere, so
  parallelism is opt-in;
- exceptions propagate exactly as in the serial case (the first failing
  item raises when its result is consumed, in input order).

Threads (not processes) are the right pool here: the sweep bodies are
numpy/closed-form dominated and the work items close over live model
objects that are not picklable.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int | None = None,
) -> list[R]:
    """``[fn(x) for x in items]`` with an optional thread pool.

    ``workers`` is clamped to the number of items; values of ``None``,
    ``0`` or ``1`` run serially.
    """
    seq: Sequence[T] = list(items)
    if not seq:
        return []
    if not workers or workers <= 1 or len(seq) == 1:
        return [fn(x) for x in seq]
    with ThreadPoolExecutor(max_workers=min(workers, len(seq))) as pool:
        return list(pool.map(fn, seq))
