"""Deterministic parallel mapping for sweep workloads.

The Table 5 power sweep, the decimation-plan enumeration, the scenario
sweeps of :mod:`repro.sweep` and the design-space explorations of
:mod:`repro.explore` are embarrassingly parallel: independent evaluations
of a pure function over a parameter grid.  :func:`parallel_map` gives
them a shared ``workers=`` knob with two backends:

- ``backend="thread"`` (default) — a
  :class:`concurrent.futures.ThreadPoolExecutor`.  Right when the sweep
  bodies are numpy/closed-form dominated (they release the GIL) or when
  the work items close over live model objects that are not picklable.
- ``backend="process"`` — a
  :class:`concurrent.futures.ProcessPoolExecutor` for sweeps whose bodies
  are pure-Python dominated and outgrow the GIL.  The **picklability
  contract**: ``fn`` must be a module-level callable (or a
  :func:`functools.partial` of one) and every item and result must
  pickle.  Callers pass *task descriptors* (frozen dataclasses, tuples of
  primitives) instead of live-model closures and rebuild models inside
  the worker — see :func:`repro.sweep.engine.evaluate_point` and the
  planner's split evaluator for the idiom.

**Persistent pools**: executors are kept alive in a per-process registry
keyed on ``(backend, workers)`` and reused by every subsequent
:func:`parallel_map` with the same knobs, so repeated ``run_sweep`` /
``run_explore`` rounds pay process spawn-up (and each worker's lazily
rebuilt models and per-process report cache) once instead of per call.
:func:`shutdown` tears every pool down explicitly; an ``atexit`` hook
does the same at interpreter exit, and a pool whose workers died
(``BrokenExecutor``) is evicted so the next call starts a fresh one.

Guarantees, identical for both backends and unchanged by pool reuse:

- **Deterministic ordering** — results come back in input order
  (``Executor.map`` semantics), so a parallel sweep is byte-identical to
  the serial one regardless of completion order;
- ``workers=None``, ``0`` or ``1`` runs serially in the caller's thread
  (no executor, no pool) — the default everywhere, so parallelism is
  opt-in; negative worker counts are a configuration error, not a silent
  serial fallback;
- exceptions propagate exactly as in the serial case (the first failing
  item raises when its result is consumed, in input order); a plain task
  exception leaves the pool alive and reusable.

**Fault tolerance** is opt-in through ``retry=``: a
:class:`~repro.resilience.RetryPolicy` switches the pooled path to
per-item futures with per-task timeouts (``Future.result(timeout=...)``),
deterministic exponential backoff between attempts (injectable
``sleep``), and partial-result recovery on ``BrokenExecutor`` — the dead
pool is evicted, a fresh one is built, and only the items that never
finished are re-submitted, so completed work survives a worker kill.
Results remain input-ordered and serial-identical; a task that exhausts
its attempts raises :class:`~repro.errors.TaskFailedError` (lowest
failing index first) with the underlying error as ``__cause__``.  A
worker death necessarily loses track of *which* in-flight item killed
it, so every unfinished item is charged one attempt per rebuild — the
attempt budget still bounds repeated kills.
"""

from __future__ import annotations

import atexit
import functools
import threading
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import (
    TimeoutError as FuturesTimeoutError,
)
from typing import Callable, Iterable, Sequence, TypeVar

from . import telemetry
from .errors import ConfigurationError, TaskFailedError
from .resilience import RetryPolicy

T = TypeVar("T")
R = TypeVar("R")

#: Executor backends accepted by :func:`parallel_map`.
BACKENDS = ("thread", "process")

#: Live executors, keyed on ``(backend, workers)`` — the persistent pool
#: registry :func:`get_pool` serves and :func:`shutdown` clears.
_POOLS: dict[tuple[str, int], Executor] = {}

#: Guards registry mutation: without it two threads racing the first
#: call for one key would each build an executor and leak the loser
#: beyond :func:`shutdown`'s reach.
_POOLS_LOCK = threading.Lock()


def get_pool(backend: str, workers: int) -> Executor:
    """The shared executor for ``(backend, workers)``, created on first use.

    Pools are sized to the *requested* worker count (executors spawn
    workers lazily, so asking a wide pool to serve a narrow batch costs
    nothing) and live until :func:`shutdown` or interpreter exit.
    """
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown parallel backend {backend!r}; expected one of {BACKENDS}"
        )
    if workers < 1:
        raise ConfigurationError(
            f"a pool needs workers >= 1, got {workers}"
        )
    key = (backend, workers)
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is None:
            if backend == "process":
                pool = ProcessPoolExecutor(max_workers=workers)
            else:
                pool = ThreadPoolExecutor(max_workers=workers)
            _POOLS[key] = pool
        return pool


def shutdown(wait: bool = True) -> int:
    """Tear down every persistent pool; returns how many were closed.

    Safe to call at any time — the next :func:`parallel_map` that needs a
    pool simply builds a fresh one.  Explicit calls default to
    ``wait=True``; the :mod:`atexit` hook uses ``wait=False`` so a
    wedged worker cannot hang interpreter exit.
    """
    closed = 0
    while True:
        with _POOLS_LOCK:
            if not _POOLS:
                return closed
            _, pool = _POOLS.popitem()
        pool.shutdown(wait=wait)
        closed += 1


def _shutdown_at_exit() -> None:
    """Interpreter-exit teardown: never wait on (possibly wedged) workers."""
    shutdown(wait=False)


atexit.register(_shutdown_at_exit)


def _evict_pool(backend: str, workers: int) -> None:
    """Drop a (broken) pool from the registry and shut its carcass down."""
    with _POOLS_LOCK:
        evicted = _POOLS.pop((backend, workers), None)
    if evicted is not None:
        evicted.shutdown(wait=False)


def _traced_task(fn: Callable[[T], R], item: T) -> R:
    """Task wrapper applied only when tracing is enabled.

    Emits one ``parallel.task`` span per execution and flushes the
    worker's shard afterwards, so a worker killed between tasks loses at
    most the task it was running (whose torn shard tail the merge
    salvages).  Module-level so it survives the process backend's
    pickling contract; the disabled hot path never sees this wrapper.
    """
    try:
        with telemetry.span("parallel.task"):
            return fn(item)
    finally:
        telemetry.flush()


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int | None = None,
    backend: str = "thread",
    retry: RetryPolicy | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> list[R]:
    """``[fn(x) for x in items]`` with an optional persistent executor pool.

    ``workers`` values of ``None``, ``0`` or ``1`` run serially and
    negative values raise :class:`~repro.errors.ConfigurationError`.
    ``backend`` selects the pool type (``"thread"`` or ``"process"``);
    with ``"process"`` both ``fn`` and the items must be picklable (see
    the module docstring).  The executor comes from the per-process
    registry (:func:`get_pool`) and stays alive for the next call with
    the same knobs.

    ``retry`` (a :class:`~repro.resilience.RetryPolicy`) arms the
    fault-tolerant path: per-task timeouts, deterministic backoff via
    the injectable ``sleep``, and ``BrokenExecutor`` recovery that keeps
    completed results and re-submits only unfinished items (see the
    module docstring).  With ``retry=None`` behaviour is exactly the
    original contract — first failure propagates, a broken pool is
    evicted and the error raised.
    """
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown parallel backend {backend!r}; expected one of {BACKENDS}"
        )
    if workers is not None and workers < 0:
        raise ConfigurationError(
            f"workers must be >= 0 (or None for serial), got {workers}"
        )
    seq: Sequence[T] = list(items)
    if not seq:
        return []
    if telemetry.enabled():
        # A partial of the module-level wrapper keeps the process
        # backend's picklability contract; the disabled hot path never
        # allocates it.
        fn = functools.partial(_traced_task, fn)
    if not workers or workers <= 1 or len(seq) == 1:
        if retry is None:
            return [fn(x) for x in seq]
        from .resilience import call_with_retry

        return [
            call_with_retry(
                lambda x=x: fn(x), retry, sleep=sleep,
                label=f"item {i}",
            )
            for i, x in enumerate(seq)
        ]
    telemetry.counter("parallel.submit", len(seq), backend=backend)
    with telemetry.span(
        "parallel.map", backend=backend, workers=workers, items=len(seq)
    ):
        try:
            if retry is not None:
                return _map_with_retry(
                    fn, seq, workers, backend, retry, sleep
                )
            pool = get_pool(backend, workers)
            try:
                if backend == "process":
                    # Chunking amortises the per-task pickle round-trip;
                    # the chunk size is a pure function of the request
                    # (not of pool state), and Executor.map reassembles
                    # chunk results in input order so determinism holds.
                    n_workers = min(workers, len(seq))
                    chunksize = max(1, len(seq) // (n_workers * 4))
                    return list(pool.map(fn, seq, chunksize=chunksize))
                return list(pool.map(fn, seq))
            except BrokenExecutor:
                # Workers died (e.g. killed mid-task): shut the carcass
                # down and evict it so the next call rebuilds a healthy
                # pool, then surface the failure.
                telemetry.counter("parallel.broken_pool", backend=backend)
                _evict_pool(backend, workers)
                raise
        finally:
            # Pool drain: the parent's merge point.  Flushing here means
            # every record emitted during the map is on disk before the
            # caller (e.g. the --trace CLI exit path) merges shards.
            telemetry.event("pool.drain", backend=backend, workers=workers)
            telemetry.flush()


def _map_with_retry(
    fn: Callable[[T], R],
    seq: Sequence[T],
    workers: int,
    backend: str,
    policy: RetryPolicy,
    sleep: Callable[[float], None],
) -> list[R]:
    """The fault-tolerant pooled map (see :func:`parallel_map`).

    Every item is submitted as its own future (no chunking — a chunk
    would couple innocent items to a poison neighbour's fate), results
    are consumed strictly in input order, and failures are handled
    per item:

    - a task exception or a ``timeout_s`` expiry charges the item one
      attempt, backs off deterministically, and re-submits it;
    - ``BrokenExecutor`` evicts the dead pool, builds a fresh one and
      re-submits every item whose result was not already safely
      completed, charging each one attempt (the killer is anonymous);
    - an item that exhausts ``max_attempts`` raises
      :class:`~repro.errors.TaskFailedError` from its last error, at the
      lowest failing index — deterministic, like serial propagation.
    """
    pool = get_pool(backend, workers)
    n = len(seq)
    futures: list[Future] = [pool.submit(fn, seq[i]) for i in range(n)]
    attempts = [0] * n
    results: list[R] = [None] * n  # type: ignore[list-item]

    def fail(index: int, exc: Exception) -> Exception | None:
        """Charge one attempt; returns the terminal error if exhausted."""
        attempts[index] += 1
        telemetry.counter(
            "parallel.retry", index=index, error=type(exc).__name__
        )
        if attempts[index] >= policy.max_attempts:
            return TaskFailedError(
                f"item {index} failed on every one of "
                f"{attempts[index]} attempt(s): {exc}",
                attempts=attempts[index],
            )
        return None

    i = 0
    while i < n:
        try:
            results[i] = futures[i].result(timeout=policy.timeout_s)
            i += 1
            continue
        except BrokenExecutor as exc:
            telemetry.counter("parallel.broken_pool", backend=backend)
            terminal = fail(i, exc)
            if terminal is not None:
                _evict_pool(backend, workers)
                raise terminal from exc
            _evict_pool(backend, workers)
            pool = get_pool(backend, workers)
            # Keep every result that is already safely complete (their
            # futures resolved before the pool died); re-submit the rest.
            # The current item was charged above; other unfinished items
            # are charged when their own result() observes the break —
            # except they never will, because we replace their futures
            # here.  Charge them now instead.
            for j in range(i + 1, n):
                f = futures[j]
                if f.done() and f.exception() is None:
                    continue
                terminal_j = fail(j, exc)
                if terminal_j is not None:
                    raise terminal_j from exc
                futures[j] = pool.submit(fn, seq[j])
            sleep(policy.delay_s(attempts[i]))
            futures[i] = pool.submit(fn, seq[i])
            continue
        except FuturesTimeoutError as exc:
            futures[i].cancel()
            terminal = fail(i, exc)
            if terminal is not None:
                raise terminal from TimeoutError(
                    f"item {i} exceeded the per-task timeout of "
                    f"{policy.timeout_s}s"
                )
        except Exception as exc:
            terminal = fail(i, exc)
            if terminal is not None:
                raise terminal from exc
        sleep(policy.delay_s(attempts[i]))
        futures[i] = pool.submit(fn, seq[i])
    return results
