"""Deterministic parallel mapping for sweep workloads.

The Table 5 power sweep, the decimation-plan enumeration, the scenario
sweeps of :mod:`repro.sweep` and the ablation benches are embarrassingly
parallel: independent evaluations of a pure function over a parameter
grid.  :func:`parallel_map` gives them a shared ``workers=`` knob with two
backends:

- ``backend="thread"`` (default) — a
  :class:`concurrent.futures.ThreadPoolExecutor`.  Right when the sweep
  bodies are numpy/closed-form dominated (they release the GIL) or when
  the work items close over live model objects that are not picklable.
- ``backend="process"`` — a
  :class:`concurrent.futures.ProcessPoolExecutor` for sweeps whose bodies
  are pure-Python dominated and outgrow the GIL.  The **picklability
  contract**: ``fn`` must be a module-level callable (or a
  :func:`functools.partial` of one) and every item and result must
  pickle.  Callers pass *task descriptors* (frozen dataclasses, tuples of
  primitives) instead of live-model closures and rebuild models inside
  the worker — see :func:`repro.sweep.engine.evaluate_point` and the
  planner's split evaluator for the idiom.

Guarantees, identical for both backends:

- **Deterministic ordering** — results come back in input order
  (``Executor.map`` semantics), so a parallel sweep is byte-identical to
  the serial one regardless of completion order;
- ``workers=None``, ``0`` or ``1`` runs serially in the caller's thread
  (no executor, no pool overhead) — the default everywhere, so
  parallelism is opt-in; negative worker counts are a configuration
  error, not a silent serial fallback;
- exceptions propagate exactly as in the serial case (the first failing
  item raises when its result is consumed, in input order).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from .errors import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")

#: Executor backends accepted by :func:`parallel_map`.
BACKENDS = ("thread", "process")


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int | None = None,
    backend: str = "thread",
) -> list[R]:
    """``[fn(x) for x in items]`` with an optional executor pool.

    ``workers`` is clamped to the number of items; values of ``None``,
    ``0`` or ``1`` run serially and negative values raise
    :class:`~repro.errors.ConfigurationError`.  ``backend`` selects the
    pool type (``"thread"`` or ``"process"``); with ``"process"`` both
    ``fn`` and the items must be picklable (see the module docstring).
    """
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown parallel backend {backend!r}; expected one of {BACKENDS}"
        )
    if workers is not None and workers < 0:
        raise ConfigurationError(
            f"workers must be >= 0 (or None for serial), got {workers}"
        )
    seq: Sequence[T] = list(items)
    if not seq:
        return []
    if not workers or workers <= 1 or len(seq) == 1:
        return [fn(x) for x in seq]
    n_workers = min(workers, len(seq))
    if backend == "process":
        # Chunking amortises the per-task pickle round-trip; Executor.map
        # reassembles chunk results in input order so determinism holds.
        chunksize = max(1, len(seq) // (n_workers * 4))
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            return list(pool.map(fn, seq, chunksize=chunksize))
    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(fn, seq))
