"""Persistent on-disk report store: the ReportCache spill.

A :class:`ReportStore` is one JSONL file (schema
``repro-explore-store/v1``): a header line followed by self-contained
records —

- ``label`` records: the batch-report architecture label of one model;
- ``report`` records: one ``(model, configuration)`` implement outcome —
  the full :class:`~repro.archs.base.ImplementationReport` field set, or
  the cached :class:`~repro.errors.ConfigurationError` /
  :class:`~repro.errors.MappingError` (type + message);
- ``frontier`` records: one exploration's rendered report document,
  keyed by the digest of its search space.

**Content-hashed invalidation**: models are identified by the SHA-256
digest of ``repr(model.cache_key())`` and configurations by their
:func:`~repro.core.evaluator.config_cache_key` field values verbatim.
Change a model constant (which the cache-key contract requires to change
``cache_key()``) and its stored entries simply stop matching — they are
retained in the file but never loaded, and the next :meth:`save`
rewrites the store with the new digests alongside.  Frontier snapshots
key on the spec *and* the full model set, so a model tweak invalidates
them too.

Round-trip exactness: floats serialise through :mod:`json` at
``repr`` precision (shortest round-trip), so a loaded report equals the
computed one field for field and a warm-started exploration reproduces
cold-run output byte for byte — asserted, together with the >= 90 %
hit-rate warm-start contract, in ``tests/test_explore.py``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Sequence

from ..archs.base import (
    ArchitectureModel,
    Flexibility,
    ImplementationReport,
)
from ..core.evaluator import ReportCache
from ..energy.technology import TechnologyNode
from ..errors import ConfigurationError, MappingError
from .spec import ExploreSpec

SCHEMA = "repro-explore-store/v1"

#: The exception types the ReportCache contract allows in entries.
_ERROR_TYPES = {
    "ConfigurationError": ConfigurationError,
    "MappingError": MappingError,
}


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def model_digest(model_key: tuple) -> str:
    """Content hash of one model identity (its ``cache_key()`` repr)."""
    return _digest(repr(model_key))


def space_digest(
    spec: ExploreSpec, models: Sequence[ArchitectureModel]
) -> str:
    """Content hash of one search space: the spec plus every model."""
    keys = tuple(model_digest(m.cache_key()) for m in models)
    return _digest(repr((spec, keys)))


def _report_to_json(report: ImplementationReport) -> dict:
    return {
        "architecture": report.architecture,
        "technology": {
            "feature_um": report.technology.feature_um,
            "vdd": report.technology.vdd,
            "label": report.technology.label,
        },
        "clock_hz": report.clock_hz,
        "power_w": report.power_w,
        "area_mm2": report.area_mm2,
        "flexibility": int(report.flexibility),
        "feasible": report.feasible,
        "notes": report.notes,
    }


def _report_from_json(doc: dict) -> ImplementationReport:
    tech = doc["technology"]
    return ImplementationReport(
        architecture=doc["architecture"],
        technology=TechnologyNode(
            feature_um=tech["feature_um"],
            vdd=tech["vdd"],
            label=tech["label"],
        ),
        clock_hz=doc["clock_hz"],
        power_w=doc["power_w"],
        area_mm2=doc["area_mm2"],
        flexibility=Flexibility(doc["flexibility"]),
        feasible=doc["feasible"],
        notes=doc["notes"],
    )


class ReportStore:
    """Content-hashed JSONL spill of a :class:`ReportCache` plus frontiers.

    The store is engine-agnostic persistence: :meth:`load` warm-starts a
    cache with every record produced by a model whose content digest
    still matches, :meth:`save` rewrites the file as the union of what
    it already held and the cache's current entries, and frontier
    documents ride alongside keyed by :func:`space_digest`.

    Writes are **atomic** (temp file + ``os.replace``), so a reader — or
    a crash — never sees a torn file.  Concurrent writers are
    last-merge-wins: each rewrites its own union of what it last read,
    which converges for disjoint model sets but offers no cross-process
    locking; serialise explorations that must share one store file.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------ raw file
    def _read_records(self) -> tuple[dict, dict, dict]:
        """(labels, reports, frontiers) keyed for dedup; tolerates a
        missing file, rejects a foreign schema or undecodable content."""
        labels: dict[str, str] = {}
        reports: dict[tuple[str, str], dict] = {}
        frontiers: dict[str, dict] = {}
        if not self.path.exists():
            return labels, reports, frontiers
        try:
            with self.path.open() as fh:
                header = fh.readline()
                if not header.strip():
                    return labels, reports, frontiers
                head = json.loads(header)
                if head.get("schema") != SCHEMA:
                    raise ConfigurationError(
                        f"{self.path}: unknown store schema "
                        f"{head.get('schema')!r}"
                    )
                for line in fh:
                    if not line.strip():
                        continue
                    record = json.loads(line)
                    kind = record.get("kind")
                    if kind == "label":
                        labels[record["model"]] = record["architecture"]
                    elif kind == "report":
                        key = (
                            record["model"], json.dumps(record["config"])
                        )
                        reports[key] = record
                    elif kind == "frontier":
                        frontiers[record["space"]] = record["doc"]
        except (
            json.JSONDecodeError, AttributeError, KeyError, TypeError
        ) as exc:
            raise ConfigurationError(
                f"{self.path}: corrupt store record ({exc})"
            ) from exc
        return labels, reports, frontiers

    def _write_records(
        self, labels: dict, reports: dict, frontiers: dict
    ) -> None:
        lines = [json.dumps({"schema": SCHEMA})]
        for digest in sorted(labels):
            lines.append(
                json.dumps(
                    {
                        "kind": "label",
                        "model": digest,
                        "architecture": labels[digest],
                    },
                    sort_keys=True,
                )
            )
        for key in sorted(reports):
            lines.append(json.dumps(reports[key], sort_keys=True))
        for digest in sorted(frontiers):
            lines.append(
                json.dumps(
                    {
                        "kind": "frontier",
                        "space": digest,
                        "doc": frontiers[digest],
                    },
                    sort_keys=True,
                )
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic replace: a concurrent reader (or a crash mid-write)
        # sees either the old complete file or the new one, never a
        # torn mix.
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write("\n".join(lines) + "\n")
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------- reports
    def load(
        self, cache: ReportCache, models: Sequence[ArchitectureModel]
    ) -> int:
        """Warm-start ``cache`` with every record of the given models.

        Returns the number of report entries inserted.  Records whose
        model digest matches none of ``models`` — stale content, or
        another process's model set — are left untouched on disk and
        simply not loaded.
        """
        labels, reports, _ = self._read_records()
        by_digest = {
            model_digest(m.cache_key()): m.cache_key() for m in models
        }
        for digest, label in labels.items():
            key = by_digest.get(digest)
            if key is not None:
                cache.insert_architecture(key, label)
        loaded = 0
        for record in reports.values():
            key = by_digest.get(record["model"])
            if key is None:
                continue
            config_key = tuple(record["config"])
            if "report" in record:
                cache.insert(
                    key, config_key, _report_from_json(record["report"]),
                    None,
                )
            else:
                error_type = _ERROR_TYPES.get(record["error"]["type"])
                if error_type is None:
                    continue
                cache.insert(
                    key, config_key, None,
                    error_type(record["error"]["message"]),
                )
            loaded += 1
        return loaded

    def save(self, cache: ReportCache) -> int:
        """Spill every cache entry; returns the total records on disk.

        Rewrites the file as the union of its previous records and the
        cache's current entries (cache wins on conflict); entries whose
        error type falls outside the cache contract are skipped.
        """
        labels, reports, frontiers = self._read_records()
        for model_key, label in cache.architecture_labels().items():
            labels[model_digest(model_key)] = label
        for model_key, config_key, report, error in cache.entries():
            digest = model_digest(model_key)
            config_list = list(config_key)
            record: dict = {
                "kind": "report",
                "model": digest,
                "config": config_list,
            }
            if report is not None:
                record["report"] = _report_to_json(report)
            else:
                type_name = type(error).__name__
                if type_name not in _ERROR_TYPES:
                    continue
                record["error"] = {
                    "type": type_name,
                    "message": str(error),
                }
            reports[(digest, json.dumps(config_list))] = record
        self._write_records(labels, reports, frontiers)
        return len(reports)

    # ----------------------------------------------------------- frontiers
    def save_frontier(
        self,
        spec: ExploreSpec,
        models: Sequence[ArchitectureModel],
        doc: dict,
    ) -> str:
        """Record one exploration's report document; returns its digest."""
        labels, reports, frontiers = self._read_records()
        digest = space_digest(spec, models)
        frontiers[digest] = doc
        self._write_records(labels, reports, frontiers)
        return digest

    def load_frontier(
        self, spec: ExploreSpec, models: Sequence[ArchitectureModel]
    ) -> dict | None:
        """The stored report document for this exact space, if any."""
        _, _, frontiers = self._read_records()
        return frontiers.get(space_digest(spec, models))
