"""Persistent on-disk report store: the ReportCache spill.

A :class:`ReportStore` is one JSONL file (schema
``repro-explore-store/v1``): a header line followed by self-contained
records —

- ``label`` records: the batch-report architecture label of one model;
- ``report`` records: one ``(model, configuration)`` implement outcome —
  the full :class:`~repro.archs.base.ImplementationReport` field set, or
  the cached :class:`~repro.errors.ConfigurationError` /
  :class:`~repro.errors.MappingError` (type + message);
- ``frontier`` records: one exploration's rendered report document,
  keyed by the digest of its search space;
- ``checkpoint`` records: one in-flight exploration's resume state
  (evaluated cells, pending set, round counters), keyed the same way —
  written after every adaptive round, dropped on completion.  Readers
  ignore record kinds they do not know, so the schema stays ``v1``.

**Content-hashed invalidation**: models are identified by the SHA-256
digest of ``repr(model.cache_key())`` and configurations by their
:func:`~repro.core.evaluator.config_cache_key` field values verbatim.
Change a model constant (which the cache-key contract requires to change
``cache_key()``) and its stored entries simply stop matching — they are
retained in the file but never loaded, and the next :meth:`save`
rewrites the store with the new digests alongside.  Frontier snapshots
key on the spec *and* the full model set, so a model tweak invalidates
them too.

Round-trip exactness: floats serialise through :mod:`json` at
``repr`` precision (shortest round-trip), so a loaded report equals the
computed one field for field and a warm-started exploration reproduces
cold-run output byte for byte — asserted, together with the >= 90 %
hit-rate warm-start contract, in ``tests/test_explore.py``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Sequence

from ..archs.base import (
    ArchitectureModel,
    Flexibility,
    ImplementationReport,
)
from .. import telemetry
from ..core.evaluator import ReportCache
from ..energy.technology import TechnologyNode
from ..errors import ConfigurationError, MappingError
from ..faults import fault_point
from .spec import ExploreSpec

SCHEMA = "repro-explore-store/v1"

#: The exception types the ReportCache contract allows in entries.
_ERROR_TYPES = {
    "ConfigurationError": ConfigurationError,
    "MappingError": MappingError,
}


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def model_digest(model_key: tuple) -> str:
    """Content hash of one model identity (its ``cache_key()`` repr)."""
    return _digest(repr(model_key))


def space_digest(
    spec: ExploreSpec, models: Sequence[ArchitectureModel]
) -> str:
    """Content hash of one search space: the spec plus every model."""
    keys = tuple(model_digest(m.cache_key()) for m in models)
    return _digest(repr((spec, keys)))


def _report_to_json(report: ImplementationReport) -> dict:
    return {
        "architecture": report.architecture,
        "technology": {
            "feature_um": report.technology.feature_um,
            "vdd": report.technology.vdd,
            "label": report.technology.label,
        },
        "clock_hz": report.clock_hz,
        "power_w": report.power_w,
        "area_mm2": report.area_mm2,
        "flexibility": int(report.flexibility),
        "feasible": report.feasible,
        "notes": report.notes,
    }


def _report_from_json(doc: dict) -> ImplementationReport:
    tech = doc["technology"]
    return ImplementationReport(
        architecture=doc["architecture"],
        technology=TechnologyNode(
            feature_um=tech["feature_um"],
            vdd=tech["vdd"],
            label=tech["label"],
        ),
        clock_hz=doc["clock_hz"],
        power_w=doc["power_w"],
        area_mm2=doc["area_mm2"],
        flexibility=Flexibility(doc["flexibility"]),
        feasible=doc["feasible"],
        notes=doc["notes"],
    )


class ReportStore:
    """Content-hashed JSONL spill of a :class:`ReportCache` plus frontiers.

    The store is engine-agnostic persistence: :meth:`load` warm-starts a
    cache with every record produced by a model whose content digest
    still matches, :meth:`save` rewrites the file as the union of what
    it already held and the cache's current entries, and frontier
    documents ride alongside keyed by :func:`space_digest`.

    Writes are **atomic** (temp file + fsync + ``os.replace``), so a
    reader — or a crash — never sees a torn file through the normal
    write path.  Should a torn or garbled file reach the store anyway
    (a crashed non-atomic copy, disk corruption), reading **salvages**
    it: every record line that still parses is kept, the bad lines are
    quarantined to a ``<name>.quarantine`` sidecar for inspection, and
    the next save rewrites a clean file.  A file whose *header* declares
    a different schema is a real error and still raises.  Concurrent
    writers are last-merge-wins: each rewrites its own union of what it
    last read, which converges for disjoint model sets but offers no
    cross-process locking; serialise explorations that must share one
    store file.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        #: Bad lines quarantined by the most recent read (diagnostics).
        self.last_salvaged = 0

    # ------------------------------------------------------------ raw file
    @property
    def quarantine_path(self) -> Path:
        """Sidecar file collecting unparseable record lines."""
        return self.path.with_name(self.path.name + ".quarantine")

    def _quarantine(self, bad_lines: "list[str]") -> None:
        """Append unparseable lines to the sidecar (best effort)."""
        self.last_salvaged = len(bad_lines)
        if not bad_lines:
            return
        telemetry.counter("store.salvaged", len(bad_lines))
        try:
            with self.quarantine_path.open("a") as fh:
                for line in bad_lines:
                    fh.write(line.rstrip("\n") + "\n")
        except OSError:
            pass

    def _read_records(self) -> tuple[dict, dict, dict, dict]:
        """(labels, reports, frontiers, checkpoints) keyed for dedup.

        Tolerates a missing file; salvages a torn/garbled one (valid
        lines kept, bad lines quarantined — see the class docstring);
        a parseable header naming a foreign schema still raises.
        """
        labels: dict[str, str] = {}
        reports: dict[tuple[str, str], dict] = {}
        frontiers: dict[str, dict] = {}
        checkpoints: dict[str, dict] = {}
        self.last_salvaged = 0
        if not self.path.exists():
            return labels, reports, frontiers, checkpoints
        with self.path.open() as fh:
            lines = fh.readlines()
        if not lines or not lines[0].strip():
            return labels, reports, frontiers, checkpoints
        try:
            head = json.loads(lines[0])
            if not isinstance(head, dict):
                raise TypeError("header is not an object")
        except (json.JSONDecodeError, TypeError):
            # A garbled header means nothing after it can be trusted to
            # be this store's data: quarantine the whole file.
            self._quarantine(lines)
            return labels, reports, frontiers, checkpoints
        if head.get("schema") != SCHEMA:
            raise ConfigurationError(
                f"{self.path}: unknown store schema {head.get('schema')!r}"
            )
        bad: list[str] = []
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                kind = record.get("kind")
                if kind == "label":
                    labels[record["model"]] = record["architecture"]
                elif kind == "report":
                    key = (record["model"], json.dumps(record["config"]))
                    reports[key] = record
                elif kind == "frontier":
                    frontiers[record["space"]] = record["doc"]
                elif kind == "checkpoint":
                    checkpoints[record["space"]] = record["doc"]
            except (
                json.JSONDecodeError, AttributeError, KeyError, TypeError
            ):
                # Torn tail or foreign garbage: salvage what parsed.
                bad.append(line)
        self._quarantine(bad)
        return labels, reports, frontiers, checkpoints

    def _write_records(
        self,
        labels: dict,
        reports: dict,
        frontiers: dict,
        checkpoints: dict,
    ) -> None:
        lines = [json.dumps({"schema": SCHEMA})]
        for digest in sorted(labels):
            lines.append(
                json.dumps(
                    {
                        "kind": "label",
                        "model": digest,
                        "architecture": labels[digest],
                    },
                    sort_keys=True,
                )
            )
        for key in sorted(reports):
            lines.append(json.dumps(reports[key], sort_keys=True))
        for digest in sorted(frontiers):
            lines.append(
                json.dumps(
                    {
                        "kind": "frontier",
                        "space": digest,
                        "doc": frontiers[digest],
                    },
                    sort_keys=True,
                )
            )
        for digest in sorted(checkpoints):
            lines.append(
                json.dumps(
                    {
                        "kind": "checkpoint",
                        "space": digest,
                        "doc": checkpoints[digest],
                    },
                    sort_keys=True,
                )
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic replace: a concurrent reader (or a crash mid-write)
        # sees either the old complete file or the new one, never a
        # torn mix.  The temp file is fsynced before the replace so the
        # rename cannot outlive its contents across a power cut, and the
        # directory entry is fsynced best-effort afterwards.
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write("\n".join(lines) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        try:
            dir_fd = os.open(self.path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:
            pass
        # Chaos site: a "torn" spec truncates the just-published file
        # and raises, simulating a crash that corrupted the store tail —
        # what the salvage path above must survive.
        fault_point(
            "store.write", key=self.path.name, path=str(self.path)
        )

    # ------------------------------------------------------------- reports
    def load(
        self, cache: ReportCache, models: Sequence[ArchitectureModel]
    ) -> int:
        """Warm-start ``cache`` with every record of the given models.

        Returns the number of report entries inserted.  Records whose
        model digest matches none of ``models`` — stale content, or
        another process's model set — are left untouched on disk and
        simply not loaded.
        """
        with telemetry.span("store.load", path=str(self.path)):
            labels, reports, _, _ = self._read_records()
            by_digest = {
                model_digest(m.cache_key()): m.cache_key() for m in models
            }
            for digest, label in labels.items():
                key = by_digest.get(digest)
                if key is not None:
                    cache.insert_architecture(key, label)
            loaded = 0
            for record in reports.values():
                key = by_digest.get(record["model"])
                if key is None:
                    continue
                config_key = tuple(record["config"])
                if "report" in record:
                    cache.insert(
                        key, config_key,
                        _report_from_json(record["report"]), None,
                    )
                else:
                    error_type = _ERROR_TYPES.get(record["error"]["type"])
                    if error_type is None:
                        continue
                    cache.insert(
                        key, config_key, None,
                        error_type(record["error"]["message"]),
                    )
                loaded += 1
            telemetry.counter("store.loaded", loaded)
            return loaded

    def save(self, cache: ReportCache) -> int:
        """Spill every cache entry; returns the total records on disk.

        Rewrites the file as the union of its previous records and the
        cache's current entries (cache wins on conflict); entries whose
        error type falls outside the cache contract are skipped.
        """
        with telemetry.span("store.save", path=str(self.path)):
            labels, reports, frontiers, checkpoints = self._read_records()
            self._merge_cache(labels, reports, cache)
            self._write_records(labels, reports, frontiers, checkpoints)
            telemetry.counter("store.saved", len(reports))
            return len(reports)

    @staticmethod
    def _merge_cache(
        labels: dict, reports: dict, cache: ReportCache
    ) -> None:
        """Fold the cache's entries into (labels, reports), cache wins."""
        for model_key, label in cache.architecture_labels().items():
            labels[model_digest(model_key)] = label
        for model_key, config_key, report, error in cache.entries():
            digest = model_digest(model_key)
            config_list = list(config_key)
            record: dict = {
                "kind": "report",
                "model": digest,
                "config": config_list,
            }
            if report is not None:
                record["report"] = _report_to_json(report)
            else:
                type_name = type(error).__name__
                if type_name not in _ERROR_TYPES:
                    continue
                record["error"] = {
                    "type": type_name,
                    "message": str(error),
                }
            reports[(digest, json.dumps(config_list))] = record

    # ----------------------------------------------------------- frontiers
    def save_frontier(
        self,
        spec: ExploreSpec,
        models: Sequence[ArchitectureModel],
        doc: dict,
    ) -> str:
        """Record one exploration's report document; returns its digest."""
        labels, reports, frontiers, checkpoints = self._read_records()
        digest = space_digest(spec, models)
        frontiers[digest] = doc
        self._write_records(labels, reports, frontiers, checkpoints)
        return digest

    def load_frontier(
        self, spec: ExploreSpec, models: Sequence[ArchitectureModel]
    ) -> dict | None:
        """The stored report document for this exact space, if any."""
        _, _, frontiers, _ = self._read_records()
        return frontiers.get(space_digest(spec, models))

    # --------------------------------------------------------- checkpoints
    def save_checkpoint(
        self,
        spec: ExploreSpec,
        models: Sequence[ArchitectureModel],
        doc: dict,
        cache: ReportCache | None = None,
    ) -> str:
        """Record one exploration round's resume state; returns its digest.

        ``doc`` is the engine's checkpoint document (evaluated cells,
        pending set, round counters — see
        :func:`repro.explore.refine.run_explore`), keyed by
        :func:`space_digest` so a model or spec change orphans it
        harmlessly.  Passing ``cache`` folds the report cache into the
        same atomic write, so a resumed run warm-starts both.
        """
        labels, reports, frontiers, checkpoints = self._read_records()
        if cache is not None:
            self._merge_cache(labels, reports, cache)
        digest = space_digest(spec, models)
        checkpoints[digest] = doc
        self._write_records(labels, reports, frontiers, checkpoints)
        return digest

    def load_checkpoint(
        self, spec: ExploreSpec, models: Sequence[ArchitectureModel]
    ) -> dict | None:
        """The stored resume state for this exact space, if any."""
        _, _, _, checkpoints = self._read_records()
        return checkpoints.get(space_digest(spec, models))

    def clear_checkpoint(
        self, spec: ExploreSpec, models: Sequence[ArchitectureModel]
    ) -> None:
        """Drop this space's resume state (the run completed)."""
        labels, reports, frontiers, checkpoints = self._read_records()
        if checkpoints.pop(space_digest(spec, models), None) is not None:
            self._write_records(labels, reports, frontiers, checkpoints)
