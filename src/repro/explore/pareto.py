"""Exact Pareto frontiers over architecture reports.

Dominance is the standard strict-Pareto relation on minimised
objectives: row ``i`` dominates row ``j`` when ``i`` is no worse on
every objective and strictly better on at least one.  The frontier is
the set of rows no eligible row dominates — duplicates survive together
(neither dominates the other), and an architecture without a published
value for an objective carries ``inf`` there (it can never win on that
objective but is judged normally on the rest).

Two computation paths exist and are **bit-identical**:

- :func:`pareto_mask_scalar` — the double-loop oracle over python
  floats, the seed-shaped reference;
- :func:`pareto_mask` — one vectorised numpy broadcast over whole
  ``(configs, architectures, objectives)`` stacks at once, which
  :func:`frontier_from_batches` feeds straight from
  :class:`~repro.archs.base.BatchImplementationReport` arrays.

Both are pinned against each other — and against the frontier axioms
(members are mutually non-dominated; every non-member has a dominating
member witness) — by the Hypothesis suite in ``tests/test_explore.py``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..archs.base import BatchImplementationReport, ImplementationReport
from ..errors import ConfigurationError
from .spec import OBJECTIVES


def objective_values(
    report: ImplementationReport, objectives: Sequence[str]
) -> tuple[float, ...]:
    """One report's objective row (scalar path; ``None`` area -> inf)."""
    row = []
    for name in objectives:
        if name not in OBJECTIVES:
            raise ConfigurationError(
                f"unknown objective {name!r}; choose from "
                f"{', '.join(OBJECTIVES)}"
            )
        value = getattr(report, name)
        row.append(math.inf if value is None else float(value))
    return tuple(row)


def pareto_mask_scalar(
    rows: Sequence[Sequence[float]],
    eligible: Sequence[bool] | None = None,
) -> list[bool]:
    """The double-loop dominance oracle.

    ``rows[i][k]`` is candidate ``i``'s value on objective ``k`` (all
    minimised); ``eligible`` masks candidates out of the competition
    entirely (they neither join the frontier nor dominate anyone).
    """
    n = len(rows)
    if eligible is None:
        eligible = [True] * n
    mask = []
    for j in range(n):
        if not eligible[j]:
            mask.append(False)
            continue
        dominated = False
        for i in range(n):
            if i == j or not eligible[i]:
                continue
            all_le = all(
                vi <= vj for vi, vj in zip(rows[i], rows[j])
            )
            any_lt = any(
                vi < vj for vi, vj in zip(rows[i], rows[j])
            )
            if all_le and any_lt:
                dominated = True
                break
        mask.append(not dominated)
    return mask


def pareto_mask(
    values: np.ndarray, eligible: np.ndarray | None = None
) -> np.ndarray:
    """Vectorised non-dominance mask, batched over leading dimensions.

    ``values`` has shape ``(..., n, m)`` — ``n`` candidates by ``m``
    minimised objectives, with any number of leading batch dimensions
    (the explorer passes the whole configuration axis at once).
    ``eligible`` (shape ``(..., n)``) excludes candidates from the
    competition.  Bit-identical to :func:`pareto_mask_scalar` applied
    per leading index: the comparisons are the same IEEE-754 ``<=`` /
    ``<`` on the same float64 values.
    """
    v = np.asarray(values, dtype=np.float64)
    if v.ndim < 2:
        raise ConfigurationError(
            "values must have shape (..., candidates, objectives)"
        )
    if eligible is None:
        elig = np.ones(v.shape[:-1], dtype=bool)
    else:
        elig = np.asarray(eligible, dtype=bool)
        if elig.shape != v.shape[:-1]:
            raise ConfigurationError(
                f"eligible shape {elig.shape} does not match candidates "
                f"{v.shape[:-1]}"
            )
    # (..., i, j): does candidate i dominate candidate j?
    le = (v[..., :, None, :] <= v[..., None, :, :]).all(axis=-1)
    lt = (v[..., :, None, :] < v[..., None, :, :]).any(axis=-1)
    dominates = le & lt & elig[..., :, None]
    dominated = (dominates & elig[..., None, :]).any(axis=-2)
    return elig & ~dominated


def frontier_from_batches(
    batches: Sequence[BatchImplementationReport],
    objectives: Sequence[str],
    wanted: set[str] | None = None,
) -> np.ndarray:
    """Per-configuration frontier masks straight from model batches.

    ``batches`` is one :class:`~repro.archs.base.BatchImplementationReport`
    per model over a shared configuration axis (model order preserved);
    the result is a boolean ``(n_configs, n_models)`` array marking the
    non-dominated architectures of every configuration in one
    :func:`pareto_mask` broadcast.  Eligibility per (config, model) is
    mappable and feasible — and, when ``wanted`` is given, named in it —
    mirroring the scenario-candidate build exactly.
    """
    if not batches:
        raise ConfigurationError("need at least one model batch")
    n_configs = len(batches[0])
    if any(len(b) != n_configs for b in batches):
        raise ConfigurationError("model batches must share one axis")
    columns = []
    for name in objectives:
        if name not in OBJECTIVES:
            raise ConfigurationError(
                f"unknown objective {name!r}; choose from "
                f"{', '.join(OBJECTIVES)}"
            )
        if name == "energy_per_output_sample_j":
            per_model = [b.power_w / 24_000.0 for b in batches]
        else:
            attr = {
                "power_w": "power_w",
                "area_mm2": "area_mm2",
                "clock_hz": "clock_hz",
            }[name]
            per_model = [getattr(b, attr) for b in batches]
        columns.append(np.stack(per_model, axis=-1))
    # (n_configs, n_models, n_objectives); unmappable entries are nan and
    # a missing area is nan too — both stand in as inf, exactly like the
    # scalar ``None -> inf`` rule (ineligible rows are masked anyway).
    values = np.stack(columns, axis=-1)
    values = np.where(np.isnan(values), np.inf, values)
    eligible = np.stack(
        [b.mappable & b.feasible for b in batches], axis=-1
    )
    if wanted is not None:
        in_subset = np.array(
            [b.architecture in wanted for b in batches], dtype=bool
        )
        eligible = eligible & in_subset[None, :]
    return pareto_mask(values, eligible)


def frontier_scalar(
    reports: Sequence[ImplementationReport | None],
    objectives: Sequence[str],
    wanted: set[str] | None = None,
) -> list[bool]:
    """Scalar-oracle twin of :func:`frontier_from_batches` for one
    configuration's per-model reports (``None`` = unmappable)."""
    rows = []
    eligible = []
    for report in reports:
        if report is None:
            rows.append(tuple(math.inf for _ in objectives))
            eligible.append(False)
            continue
        rows.append(objective_values(report, objectives))
        ok = report.feasible
        if wanted is not None:
            ok = ok and report.architecture in wanted
        eligible.append(ok)
    return pareto_mask_scalar(rows, eligible)
