"""Adaptive refinement and the dense scalar oracle.

Both engines answer the same question at the same resolution: for every
cell of the search space (discrete point x target-grid axis value), the
feasible scenario candidates, the Pareto frontier over the spec's
objectives, and the duty-cycle winner map.

- ``engine="dense"`` — the **scalar oracle**: every cell evaluated
  through the seed-shaped scalar paths (per-model scalar ``implement``,
  one :meth:`~repro.energy.scenarios.ScenarioAnalysis.evaluate` call per
  duty step, the double-loop Pareto oracle).
- ``engine="adaptive"`` — the coarse grid (plus any seeded probes) is
  evaluated first, then only cells whose *outcome signature* (candidate
  set, frontier membership, duty winner map) differs between adjacent
  evaluated neighbours are bisected, round by round, until every
  signature change is pinned to adjacent target indices.  Unevaluated
  cells inherit the outcome their surrounding neighbours agree on.
  Every round is **one batched model pass**: all newly requested cells
  across every discrete point go through
  :meth:`~repro.core.evaluator.DDCEvaluator.report_batches` /
  ``scenario_candidates_batch`` together, and the frontier masks come
  from one vectorised dominance broadcast over the batch arrays.

On spaces whose outcomes flip at most once between adjacent coarse
points — which holds for the monotone feasibility/power structure of the
paper's models along the rate axes — the two engines are byte-identical;
``python -m repro.explore --verify`` proves it on the reference space
and the Hypothesis suite pins it on random small spaces.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Sequence

from .. import telemetry
from ..config import DDCConfig
from ..core.evaluator import DDCEvaluator
from ..energy.scenarios import ScenarioAnalysis
from ..errors import ConfigurationError, MappingError, PartialResultError
from ..faults import fault_point
from ..resilience import DEFAULT_RETRY, call_with_retry, failure_cause
from ..sweep.engine import (
    duty_cycle_grid,
    scalar_winner_regions,
    select_candidates,
)
from .pareto import frontier_from_batches, frontier_scalar
from .spec import ExploreSpec

#: Engines accepted by :func:`run_explore`.
ENGINES = ("adaptive", "dense")


@dataclass(frozen=True)
class CellOutcome:
    """The discrete outcome of one search-space cell (JSON-ready).

    Everything here is *fillable*: a cell whose evaluated neighbours
    agree carries exactly their outcome, so adaptive and dense reports
    coincide wherever the signature really is constant.  Numeric
    per-cell data (objective values) lives in the coarse-grid
    :class:`CellSnapshot` instead — both engines evaluate those cells,
    so the numbers are present in both reports, bit for bit.

    ``error`` is the per-cell error channel: under
    ``on_error="skip"``/``"retry"`` a failing cell is recorded as a
    ``(type_name, message)`` pair with empty candidates/frontier/winner
    data instead of aborting the exploration.  The error participates in
    the refinement signature, so the boundary of a failing region is
    bisected exactly like any other outcome change.
    """

    index: int
    value: float
    candidates: tuple[str, ...]
    frontier: tuple[str, ...]
    winners: tuple[str, ...]
    winning_regions: tuple[tuple[float, float, str], ...]
    error: tuple[str, str] | None = None

    @property
    def failed(self) -> bool:
        """True when this cell carries a recorded failure."""
        return self.error is not None

    @property
    def static_winner(self) -> str:
        """Winner at duty cycle 1.0 (the grid's last step)."""
        if not self.winners:
            return "unavailable"
        return self.winners[-1]

    def signature(self) -> tuple:
        """What refinement compares across a cell boundary."""
        return (self.candidates, self.frontier, self.winners, self.error)

    def at(self, index: int, value: float) -> "CellOutcome":
        """This outcome re-addressed to a neighbouring cell (the fill)."""
        return dataclasses.replace(self, index=index, value=value)

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "value": self.value,
            "candidates": list(self.candidates),
            "frontier": list(self.frontier),
            "static_winner": self.static_winner,
            "winning_regions": [list(r) for r in self.winning_regions],
            "error": (
                None
                if self.error is None
                else {"type": self.error[0], "message": self.error[1]}
            ),
        }


@dataclass(frozen=True)
class ArchSnapshot:
    """One architecture's numbers at a snapshot cell."""

    name: str
    mappable: bool
    feasible: bool
    on_frontier: bool
    objectives: tuple[float | None, ...]

    def to_json(self, objective_names: Sequence[str]) -> dict:
        return {
            "name": self.name,
            "mappable": self.mappable,
            "feasible": self.feasible,
            "on_frontier": self.on_frontier,
            "objectives": dict(zip(objective_names, self.objectives)),
        }


@dataclass(frozen=True)
class CellSnapshot:
    """Objective values of every architecture at one coarse-grid cell."""

    index: int
    value: float
    architectures: tuple[ArchSnapshot, ...]

    def to_json(self, objective_names: Sequence[str]) -> dict:
        return {
            "index": self.index,
            "value": self.value,
            "architectures": [
                a.to_json(objective_names) for a in self.architectures
            ],
        }


@dataclass(frozen=True)
class PointExploration:
    """All cells of one discrete point, in target-grid order."""

    index: int
    label: str
    overrides: tuple[tuple[str, Any], ...]
    cells: tuple[CellOutcome, ...]
    snapshots: tuple[CellSnapshot, ...]

    def frontier_intervals(
        self, spec: ExploreSpec
    ) -> dict[str, list[tuple[float, float]]]:
        """Per-architecture axis intervals of frontier membership.

        Contiguous runs of cells whose frontier contains the
        architecture, as closed ``[value, value]`` spans — the compact
        summary the CLI prints and the JSON report carries.
        """
        names: list[str] = []
        for cell in self.cells:
            for name in cell.frontier:
                if name not in names:
                    names.append(name)
        out: dict[str, list[tuple[float, float]]] = {n: [] for n in names}
        for name in names:
            start: int | None = None
            for cell in self.cells:
                member = name in cell.frontier
                if member and start is None:
                    start = cell.index
                elif not member and start is not None:
                    out[name].append(
                        (spec.value_at(start), spec.value_at(cell.index - 1))
                    )
                    start = None
            if start is not None:
                out[name].append(
                    (spec.value_at(start), spec.value_at(self.cells[-1].index))
                )
        return out


_CellData = tuple[CellOutcome, CellSnapshot]


# -------------------------------------------------- checkpoint round-trips
# Unlike ``CellOutcome.to_json`` (a *report* view that drops the winners
# tuple for compactness), these serialisers round-trip the full outcome
# and snapshot state bit for bit — floats survive through json's
# shortest-repr encoding — so a resumed run is byte-identical to an
# uninterrupted one.
def _cell_to_doc(cell: _CellData) -> list:
    outcome, snapshot = cell
    return [
        {
            "index": outcome.index,
            "value": outcome.value,
            "candidates": list(outcome.candidates),
            "frontier": list(outcome.frontier),
            "winners": list(outcome.winners),
            "winning_regions": [list(r) for r in outcome.winning_regions],
            "error": None if outcome.error is None else list(outcome.error),
        },
        {
            "index": snapshot.index,
            "value": snapshot.value,
            "architectures": [
                {
                    "name": a.name,
                    "mappable": a.mappable,
                    "feasible": a.feasible,
                    "on_frontier": a.on_frontier,
                    "objectives": list(a.objectives),
                }
                for a in snapshot.architectures
            ],
        },
    ]


def _cell_from_doc(doc: list) -> _CellData:
    out_doc, snap_doc = doc
    outcome = CellOutcome(
        index=out_doc["index"],
        value=out_doc["value"],
        candidates=tuple(out_doc["candidates"]),
        frontier=tuple(out_doc["frontier"]),
        winners=tuple(out_doc["winners"]),
        winning_regions=tuple(
            (r[0], r[1], r[2]) for r in out_doc["winning_regions"]
        ),
        error=(
            None
            if out_doc["error"] is None
            else (out_doc["error"][0], out_doc["error"][1])
        ),
    )
    snapshot = CellSnapshot(
        index=snap_doc["index"],
        value=snap_doc["value"],
        architectures=tuple(
            ArchSnapshot(
                name=a["name"],
                mappable=a["mappable"],
                feasible=a["feasible"],
                on_frontier=a["on_frontier"],
                objectives=tuple(a["objectives"]),
            )
            for a in snap_doc["architectures"]
        ),
    )
    return outcome, snapshot


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown explore engine {engine!r}; expected one of {ENGINES}"
        )


def _failed_outcome(index: int, value: float, exc: Exception) -> CellOutcome:
    """The recorded-failure sentinel outcome for one cell."""
    cause = failure_cause(exc)
    return CellOutcome(
        index=index,
        value=value,
        candidates=(),
        frontier=(),
        winners=(),
        winning_regions=(),
        error=(type(cause).__name__, str(cause)),
    )


def _tolerant_cell(
    spec: ExploreSpec, index: int, value: float, key: Any, build
) -> CellOutcome:
    """Run one cell's outcome builder under the spec's failure policy.

    ``build`` is a zero-argument callable producing the
    :class:`CellOutcome` (it contains the cell's fault site, so a retry
    re-visits it).  ``"raise"`` propagates, ``"retry"`` retries under
    :data:`~repro.resilience.DEFAULT_RETRY`, and any recorded failure
    becomes a :func:`_failed_outcome` sentinel.

    Both engines funnel through here, so the ``explore.cell`` span (the
    fault site's name) covers every cell evaluation exactly once,
    retries included.
    """
    with telemetry.span("explore.cell", key=key):
        if spec.on_error == "raise":
            return build()
        try:
            if spec.on_error == "retry":
                return call_with_retry(
                    build, DEFAULT_RETRY, label=f"explore cell {key}"
                )
            return build()
        except Exception as exc:  # noqa: BLE001 — the error channel records
            return _failed_outcome(index, value, exc)


# ------------------------------------------------------------ batched cells
def _evaluate_cells_batch(
    evaluator: DDCEvaluator,
    spec: ExploreSpec,
    indices: Sequence[int],
    configs: Sequence[DDCConfig],
    keys: Sequence[Any] | None = None,
) -> list[_CellData]:
    """Evaluate a round of cells in one batched model pass.

    ``keys`` are the cells' content identities (``(point, index)``
    pairs) for the ``"explore.cell"`` fault site; snapshots are built
    from the already-materialised batches regardless of the cell's
    outcome, so a recorded failure never loses the model numbers.
    """
    batches = evaluator.report_batches(configs)
    tolerant = spec.on_error != "raise"
    if tolerant:
        outcomes = evaluator.scenario_candidate_outcomes_from_batches(
            batches, configs, spec.standby_fraction
        )
    else:
        outcomes = [
            (candidates, None)
            for candidates in evaluator.scenario_candidates_from_batches(
                batches, configs, spec.standby_fraction, strict=False
            )
        ]
    wanted = set(spec.architectures) if spec.architectures else None
    masks = frontier_from_batches(batches, spec.objectives, wanted)
    labels = [b.architecture for b in batches]
    out: list[_CellData] = []
    for i, index in enumerate(indices):
        key = keys[i] if keys is not None else index
        value = spec.value_at(index)
        candidates_i, error_i = outcomes[i]
        frontier = tuple(
            labels[j] for j in range(len(labels)) if masks[i, j]
        )

        def build(
            index=index, key=key, value=value,
            candidates_i=candidates_i, error_i=error_i, frontier=frontier,
        ) -> CellOutcome:
            fault_point("explore.cell", key=key)
            if error_i is not None:
                raise error_i
            selected = select_candidates(candidates_i, spec.architectures)
            analysis = ScenarioAnalysis(selected)
            grid = duty_cycle_grid(analysis, spec.duty_cycle_steps)
            return CellOutcome(
                index=index,
                value=value,
                candidates=tuple(c.name for c in selected),
                frontier=frontier,
                winners=tuple(grid.winners()),
                winning_regions=tuple(grid.winning_regions()),
            )

        outcome = _tolerant_cell(spec, index, value, key, build)
        archs = tuple(
            ArchSnapshot(
                name=labels[j],
                mappable=bool(batches[j].mappable[i]),
                feasible=bool(batches[j].feasible[i]),
                on_frontier=bool(masks[i, j]),
                objectives=_snapshot_objectives(
                    batches[j].reports[i], spec.objectives
                ),
            )
            for j in range(len(labels))
        )
        out.append((outcome, CellSnapshot(index, value, archs)))
    return out


def _snapshot_objectives(report, objectives) -> tuple[float | None, ...]:
    """Raw objective values for a snapshot (None where unpublished or
    unmappable) — shared verbatim by both engines."""
    if report is None:
        return tuple(None for _ in objectives)
    return tuple(
        None if (v := getattr(report, name)) is None else float(v)
        for name in objectives
    )


# ------------------------------------------------------------- scalar cells
def _evaluate_cell_scalar(
    models,
    labels: Sequence[str],
    spec: ExploreSpec,
    index: int,
    config: DDCConfig,
    key: Any = None,
) -> _CellData:
    """One cell through the seed-shaped scalar paths (the oracle).

    Shares the batch evaluator's failure policy and fault-site key
    convention, so the two engines record byte-identical error cells.
    """
    reports = []
    for model in models:
        try:
            reports.append(model.implement(config))
        except (ConfigurationError, MappingError):
            reports.append(None)
    wanted = set(spec.architectures) if spec.architectures else None
    mask = frontier_scalar(reports, spec.objectives, wanted)
    value = spec.value_at(index)
    if key is None:
        key = index

    def build() -> CellOutcome:
        fault_point("explore.cell", key=key)
        candidates = [
            DDCEvaluator._candidate(r, spec.standby_fraction)
            for r in reports
            if r is not None and r.feasible
        ]
        candidates = DDCEvaluator._require_candidates(candidates, config)
        selected = select_candidates(candidates, spec.architectures)
        analysis = ScenarioAnalysis(selected)
        steps = spec.duty_cycle_steps
        results = [analysis.evaluate(i / (steps - 1)) for i in range(steps)]
        return CellOutcome(
            index=index,
            value=value,
            candidates=tuple(c.name for c in selected),
            frontier=tuple(
                labels[j] for j in range(len(labels)) if mask[j]
            ),
            winners=tuple(r.winner for r in results),
            winning_regions=tuple(
                scalar_winner_regions(
                    [r.winner for r in results],
                    [r.duty_cycle for r in results],
                )
            ),
        )

    outcome = _tolerant_cell(spec, index, value, key, build)
    archs = tuple(
        ArchSnapshot(
            name=labels[j],
            mappable=reports[j] is not None,
            feasible=reports[j] is not None and reports[j].feasible,
            on_frontier=bool(mask[j]),
            objectives=_snapshot_objectives(reports[j], spec.objectives),
        )
        for j in range(len(labels))
    )
    return outcome, CellSnapshot(index, value, archs)


# ------------------------------------------------------------------ engines
def run_explore(
    spec: ExploreSpec,
    engine: str = "adaptive",
    evaluator: DDCEvaluator | None = None,
    store=None,
):
    """Explore the space; returns a :class:`~repro.explore.report.ExploreReport`.

    ``engine="adaptive"`` defaults to the spec's workload's
    :meth:`~repro.workloads.base.Workload.shared_evaluator` (for the
    default DDC workload, the per-process
    :func:`~repro.core.evaluator.shared_evaluator`, so repeated
    explorations — and a store-warmed report cache — amortise model
    work); ``engine="dense"`` defaults to a fresh uncached
    :meth:`~repro.workloads.base.Workload.evaluator` running the scalar
    oracle end to end.

    ``store`` (a :class:`~repro.explore.store.ReportStore`, adaptive
    engine only) arms **checkpoint/resume**: after every refinement
    round the evaluated cells, pending set and counters are written to
    the store in one atomic record (together with the report cache), and
    a fresh call for the same space picks up exactly where a killed run
    stopped.  Because the checkpoint round-trips cell state bit for bit
    and refinement is a pure function of that state, a resumed run's
    report is byte-identical to an uninterrupted one.  The checkpoint is
    dropped when the exploration completes.
    """
    from .report import ExploreReport

    _check_engine(engine)
    if store is not None and engine != "adaptive":
        raise ConfigurationError(
            "checkpoint/resume (store=) needs the adaptive engine"
        )
    points = spec.points()
    from ..workloads import get as get_workload

    workload = get_workload(getattr(spec, "workload", "ddc"))
    if engine == "dense":
        ev = evaluator if evaluator is not None else workload.evaluator()
        # The per-model batch-report labels (a per-model constant, also
        # used for models that map nothing anywhere).
        labels = [m.implement_batch([]).architecture for m in ev.models]
        coarse_set = set(spec.coarse_indices())
        results = []
        evaluations = 0
        for point in points:
            cells = []
            snapshots = []
            for index in range(spec.target_steps):
                outcome, snapshot = _evaluate_cell_scalar(
                    ev.models, labels, spec, index,
                    spec.config_at(point, index),
                    key=(point.index, index),
                )
                evaluations += 1
                cells.append(outcome)
                if index in coarse_set:
                    snapshots.append(snapshot)
            results.append(
                PointExploration(
                    point.index, point.label(), point.overrides,
                    tuple(cells), tuple(snapshots),
                )
            )
        _check_not_all_failed(spec, results)
        return ExploreReport(spec, results, evaluations)

    ev = evaluator if evaluator is not None else workload.shared_evaluator()
    checkpoint = (
        store.load_checkpoint(spec, ev.models) if store is not None else None
    )
    if checkpoint is not None:
        evaluated = [
            {int(k): _cell_from_doc(v) for k, v in point_doc.items()}
            for point_doc in checkpoint["evaluated"]
        ]
        counts = list(checkpoint["counts"])
        pending = [(p, index) for p, index in checkpoint["pending"]]
        evaluations = checkpoint["evaluations"]
        round_no = checkpoint["round"]
    else:
        evaluated: list[dict[int, _CellData]] = [{} for _ in points]
        counts = [0] * len(points)
        initial = sorted(
            set(spec.coarse_indices()) | set(spec.probe_indices())
        )
        pending = [
            (p, index) for p in range(len(points)) for index in initial
        ]
        evaluations = 0
        round_no = 0
    while pending:
        # One adaptive refinement round — span name matches the
        # "explore.round" fault site below.
        with telemetry.span(
            "explore.round", round=round_no, cells=len(pending)
        ):
            fault_point("explore.round", key=round_no)
            configs = [
                spec.config_at(points[p], index) for p, index in pending
            ]
            data = _evaluate_cells_batch(
                ev, spec, [index for _, index in pending], configs,
                keys=[(points[p].index, index) for p, index in pending],
            )
            for (p, index), cell in zip(pending, data):
                evaluated[p][index] = cell
                counts[p] += 1
            evaluations += len(pending)
            pending = []
            for p in range(len(points)):
                budget = spec.max_evaluations
                room = (
                    None if budget is None else max(0, budget - counts[p])
                )
                indices = sorted(evaluated[p])
                queued = 0
                for a, b in zip(indices, indices[1:]):
                    if b - a <= 1:
                        continue
                    sig_a = evaluated[p][a][0].signature()
                    sig_b = evaluated[p][b][0].signature()
                    if sig_a == sig_b:
                        continue
                    if room is not None and queued >= room:
                        break
                    pending.append((p, (a + b) // 2))
                    queued += 1
            round_no += 1
            if store is not None:
                store.save_checkpoint(
                    spec,
                    ev.models,
                    {
                        "round": round_no,
                        "evaluations": evaluations,
                        "counts": list(counts),
                        "evaluated": [
                            {
                                str(index): _cell_to_doc(cell)
                                for index, cell in sorted(point_cells.items())
                            }
                            for point_cells in evaluated
                        ],
                        "pending": [[p, index] for p, index in pending],
                    },
                    cache=getattr(ev, "cache", None),
                )

    coarse = spec.coarse_indices()
    results = []
    for p, point in enumerate(points):
        cells: list[CellOutcome] = []
        indices = sorted(evaluated[p])
        cursor = 0
        for index in range(spec.target_steps):
            if index in evaluated[p]:
                cells.append(evaluated[p][index][0])
                continue
            while indices[cursor + 1] < index:
                cursor += 1
            a, b = indices[cursor], indices[cursor + 1]
            out_a = evaluated[p][a][0]
            out_b = evaluated[p][b][0]
            if out_a.signature() == out_b.signature():
                source = out_a
            else:  # budget exhausted mid-refinement: nearest neighbour
                source = out_a if index - a <= b - index else out_b
            cells.append(source.at(index, spec.value_at(index)))
        results.append(
            PointExploration(
                point.index, point.label(), point.overrides,
                tuple(cells),
                tuple(evaluated[p][k][1] for k in coarse),
            )
        )
    _check_not_all_failed(spec, results)
    if store is not None:
        store.clear_checkpoint(spec, ev.models)
    return ExploreReport(spec, results, evaluations)


def _check_not_all_failed(
    spec: ExploreSpec, results: "list[PointExploration]"
) -> None:
    """An exploration where *every* cell failed helps nobody — raise."""
    if spec.on_error == "raise":
        return
    if all(cell.failed for p in results for cell in p.cells):
        first = results[0].cells[0].error
        raise PartialResultError(
            f"all {sum(len(p.cells) for p in results)} explore cell(s) "
            f"failed under on_error={spec.on_error!r}; first error: "
            f"{first[0]}: {first[1]}"
        )
