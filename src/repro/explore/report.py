"""JSON/CSV frontier reports for design-space explorations.

The JSON document (schema ``repro-explore/v1``) is a pure function of
the spec and the per-cell outcomes — it carries no engine, timing,
cache-state or evaluation-count metadata — so the adaptive engine and
the dense scalar oracle serialise to *byte-identical* output whenever
their outcomes agree.  ``python -m repro.explore --verify`` leans on
exactly that property, the same convention as the sweep reports.
"""

from __future__ import annotations

import csv
import io
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ConfigurationError
from .refine import PointExploration
from .spec import ExploreSpec

SCHEMA = "repro-explore/v1"

#: Output formats accepted by :meth:`ExploreReport.render` / the CLI.
FORMATS = ("json", "csv")


@dataclass(frozen=True)
class ExploreReport:
    """All cells of one exploration, in point/target-grid order.

    ``evaluations`` counts the cells actually run through the model
    layer (the adaptive engine's budget accounting); it is deliberately
    **not** serialised — reports must not reveal which engine produced
    them.
    """

    spec: ExploreSpec
    points: list[PointExploration]
    evaluations: int = field(default=0, compare=False)

    @property
    def partial(self) -> bool:
        """True when at least one cell carries a recorded failure."""
        return any(cell.failed for p in self.points for cell in p.cells)

    def to_json_doc(self) -> dict:
        """The schema'd document (deterministic: no engine metadata)."""
        objective_names = self.spec.objectives
        return {
            "schema": SCHEMA,
            "spec": self.spec.describe(),
            "axis_values": [
                self.spec.value_at(k)
                for k in range(self.spec.target_steps)
            ],
            "points": [
                {
                    "index": p.index,
                    "label": p.label,
                    "overrides": {k: v for k, v in p.overrides},
                    "cells": [c.to_json() for c in p.cells],
                    "snapshots": [
                        s.to_json(objective_names) for s in p.snapshots
                    ],
                    "frontier_intervals": {
                        name: [list(span) for span in spans]
                        for name, spans in p.frontier_intervals(
                            self.spec
                        ).items()
                    },
                }
                for p in self.points
            ],
            "partial": self.partial,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_doc(), indent=2, sort_keys=True) + "\n"

    def to_csv(self) -> str:
        """Long-form frontier map: one row per (point, axis value)."""
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(
            ("point", "label", "axis_value", "candidates", "frontier",
             "static_winner", "winning_regions", "error")
        )
        for p in self.points:
            for cell in p.cells:
                writer.writerow(
                    (
                        p.index,
                        p.label,
                        repr(cell.value),
                        "|".join(cell.candidates),
                        "|".join(cell.frontier),
                        cell.static_winner,
                        ";".join(
                            f"{repr(lo)}:{repr(hi)}:{name}"
                            for lo, hi, name in cell.winning_regions
                        ),
                        "" if cell.error is None else
                        f"{cell.error[0]}: {cell.error[1]}",
                    )
                )
        return buf.getvalue()

    def render(self, fmt: str = "json") -> str:
        if fmt not in FORMATS:
            raise ConfigurationError(
                f"unknown report format {fmt!r}; expected one of {FORMATS}"
            )
        return self.to_json() if fmt == "json" else self.to_csv()

    def write(self, path: str | Path | None, fmt: str = "json") -> str:
        """Write to ``path`` (``None`` or ``"-"`` = stdout); returns text."""
        text = self.render(fmt)
        if path is None or str(path) == "-":
            sys.stdout.write(text)
        else:
            Path(path).write_text(text)
        return text

    def summary(self) -> str:
        """Human-readable digest printed by the CLI."""
        axis_field, lo, hi = self.spec.axis
        lines = [
            f"{len(self.points)} discrete point(s) x "
            f"{self.spec.target_steps} values of {axis_field} "
            f"[{lo:g} .. {hi:g}] "
            f"({self.evaluations} cells evaluated of {self.spec.n_cells})"
        ]
        failed = sum(
            1 for p in self.points for cell in p.cells if cell.failed
        )
        if failed:
            lines[0] += f" (PARTIAL: {failed} cell(s) failed)"
        for p in self.points:
            lines.append(f"  [{p.index}] {p.label}")
            lines.append(
                "    frontier ("
                + ", ".join(self.spec.objectives)
                + "):"
            )
            for name, spans in p.frontier_intervals(self.spec).items():
                pretty = ", ".join(
                    f"{a:g} .. {b:g}" for a, b in spans
                )
                lines.append(f"      {name}: {pretty}")
            winners: list[str] = []
            for cell in p.cells:
                if not winners or winners[-1] != cell.static_winner:
                    winners.append(cell.static_winner)
            lines.append(
                "    static winner along the axis: " + " -> ".join(winners)
            )
        return "\n".join(lines)
