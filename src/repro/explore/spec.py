"""Declarative design-space search specifications.

An :class:`ExploreSpec` names *what* to search — one continuous
refinement axis over a float :class:`~repro.config.DDCConfig` field,
optional discrete configuration axes, a duty-cycle grid, an objective
set and an optional architecture subset — without saying how.  The
engine (:mod:`repro.explore.refine`) evaluates it either adaptively
(coarse grid + signature-driven bisection, each round one batched model
pass) or densely (the scalar oracle over every target-grid value); both
produce byte-identical reports on spaces whose outcome flips are
resolvable at the target resolution, which ``python -m repro.explore
--verify`` proves on the reference space.

Everything here is a frozen dataclass of primitives: specs pickle, hash
by content (the store keys frontier snapshots on ``repr``-digests) and
enumerate their grids as pure functions of their fields — the
**deterministic seeding** contract: ``seed`` fixes the optional probe
indices, so two runs of the same spec evaluate the same cells in the
same order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields, replace
from typing import Any, Mapping, Sequence

import numpy as np

from ..config import DDCConfig
from ..errors import ConfigurationError
from ..resilience import check_on_error

#: DDCConfig fields a discrete axis may range over (the default
#: workload's axes; other workloads validate against their own
#: configuration via :meth:`repro.workloads.base.Workload.check_axes`).
CONFIG_AXES: tuple[str, ...] = tuple(f.name for f in fields(DDCConfig))

#: DDCConfig fields the continuous refinement axis may range over (the
#: float-typed fields — integer fields belong on discrete axes; other
#: workloads declare theirs via
#: :meth:`repro.workloads.base.Workload.continuous_axes`).
CONTINUOUS_AXES: tuple[str, ...] = ("input_rate_hz", "nco_frequency_hz")

#: Report quantities an objective may minimise.  ``area_mm2`` treats a
#: report without a published area as ``inf`` (it can never win on
#: area); all objectives are minimised.
OBJECTIVES: tuple[str, ...] = (
    "power_w",
    "energy_per_output_sample_j",
    "area_mm2",
    "clock_hz",
)


@dataclass(frozen=True)
class ExplorePoint:
    """One discrete grid point: a picklable task descriptor.

    ``overrides`` is the tuple of ``(field, value)`` pairs applied on top
    of the spec's base configuration, in discrete-axis order — the same
    shape as :class:`repro.sweep.spec.SweepPoint`.
    """

    index: int
    overrides: tuple[tuple[str, Any], ...] = ()

    def label(self) -> str:
        """Human-readable point name for reports."""
        if not self.overrides:
            return "reference"
        return ",".join(f"{k}={v}" for k, v in self.overrides)


@dataclass(frozen=True)
class ExploreSpec:
    """A declarative search space for the design-space explorer.

    Parameters
    ----------
    workload:
        Registry name of the workload being explored
        (:func:`repro.workloads.get`).  Stored as the *name* so specs
        stay picklable; the default ``"ddc"`` is the paper's kernel.
    axis:
        ``(field, lo, hi)`` — the continuous refinement axis, a float
        configuration field swept over ``[lo, hi]`` on a regular
        ``target_steps`` grid (``None`` = the workload's
        :meth:`~repro.workloads.base.Workload.default_explore_axis`).
        Every bound configuration must be constructible (e.g. keep
        ``input_rate_hz`` above twice the NCO frequency) — a value that
        is not raises the configuration's own error at evaluation time,
        in either engine.
    coarse_steps:
        Size of the initial coarse grid (>= 2).  ``(target_steps - 1)``
        must be ``(coarse_steps - 1) * 2**k`` so bisection lands exactly
        on target-grid indices.
    target_steps:
        Resolution of the delivered frontier map: the adaptive engine
        answers for every one of these values, evaluating only the cells
        whose outcome could differ from a neighbour's.
    discrete_axes:
        Ordered ``(field, values)`` pairs enumerated densely (cartesian
        product, last axis fastest) — the same grid shape as
        :class:`repro.sweep.spec.SweepSpec`.
    duty_cycle_steps:
        Duty-cycle grid size for the per-cell winner map (>= 2).
    objectives:
        Report quantities (from :data:`OBJECTIVES`) the Pareto frontier
        minimises, in significance order for reports.
    architectures:
        Restrict candidates to these names (None = all feasible).
    standby_fraction:
        Idle power of fixed-function chips as a fraction of active power.
    probe_points:
        Extra target-grid indices evaluated in round 0, drawn without
        replacement from the non-coarse indices by a generator seeded
        with ``seed`` — deterministic insurance against outcome flips
        that reverse themselves inside one coarse cell.
    seed:
        Seed for the probe draw (and any future sampled stage).
    max_evaluations:
        Optional refinement budget: total cells evaluated per discrete
        point beyond which bisection stops and remaining cells fill from
        their nearest evaluated neighbour (best effort — ``--verify``
        spaces run unbudgeted).
    on_error:
        Cell-failure policy (:data:`~repro.resilience.ON_ERROR_POLICIES`):
        ``"raise"`` aborts on the first failing cell (strict default),
        ``"skip"`` records the failure on the cell's error channel and
        continues, ``"retry"`` retries the cell under
        :data:`~repro.resilience.DEFAULT_RETRY` first and records it
        only if every attempt fails.  Recorded failures mark the report
        partial.
    """

    axis: tuple[str, float, float] | None = None
    coarse_steps: int = 5
    target_steps: int = 65
    discrete_axes: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    base_config: Any | None = None
    duty_cycle_steps: int = 101
    objectives: tuple[str, ...] = ("power_w", "area_mm2")
    architectures: tuple[str, ...] | None = None
    standby_fraction: float = 0.05
    probe_points: int = 0
    seed: int = 0
    max_evaluations: int | None = None
    on_error: str = "raise"
    workload: str = "ddc"

    def __post_init__(self) -> None:
        from ..workloads import get as get_workload

        wl = get_workload(self.workload)
        if self.axis is None:
            object.__setattr__(self, "axis", wl.default_explore_axis())
        if self.base_config is None:
            object.__setattr__(self, "base_config", wl.default_config)
        else:
            wl.check_config(self.base_config)
        check_on_error(self.on_error)
        if len(self.axis) != 3:
            raise ConfigurationError(
                f"axis must be (field, lo, hi), got {self.axis!r}"
            )
        field, lo, hi = self.axis
        continuous = wl.continuous_axes()
        if field not in continuous:
            raise ConfigurationError(
                f"continuous axis {field!r} must be one of "
                f"{', '.join(continuous)}; integer fields belong on "
                "discrete_axes"
            )
        if not (float(lo) < float(hi)):
            raise ConfigurationError(
                f"axis range must satisfy lo < hi, got {lo!r} >= {hi!r}"
            )
        if self.coarse_steps < 2:
            raise ConfigurationError("coarse_steps must be >= 2")
        if self.target_steps < self.coarse_steps:
            raise ConfigurationError(
                "target_steps must be >= coarse_steps"
            )
        stride, rem = divmod(self.target_steps - 1, self.coarse_steps - 1)
        if rem or stride & (stride - 1):
            raise ConfigurationError(
                "target_steps - 1 must equal (coarse_steps - 1) * 2**k so "
                f"bisection lands on grid indices; got {self.target_steps} "
                f"targets over {self.coarse_steps} coarse steps"
            )
        seen: set[str] = {field}
        for axis in self.discrete_axes:
            if len(axis) != 2:
                raise ConfigurationError(
                    f"discrete axis must be a (field, values) pair, got "
                    f"{axis!r}"
                )
            name, values = axis
            if name in seen:
                raise ConfigurationError(f"duplicate axis {name!r}")
            seen.add(name)
            if not isinstance(values, tuple) or not values:
                raise ConfigurationError(
                    f"discrete axis {name!r} needs a non-empty tuple of "
                    "values"
                )
        wl.check_axes(self.discrete_axes, kind="discrete")
        if self.duty_cycle_steps < 2:
            raise ConfigurationError("duty_cycle_steps must be >= 2")
        if not self.objectives:
            raise ConfigurationError("need at least one objective")
        for obj in self.objectives:
            if obj not in OBJECTIVES:
                raise ConfigurationError(
                    f"unknown objective {obj!r}; choose from "
                    f"{', '.join(OBJECTIVES)}"
                )
        if len(set(self.objectives)) != len(self.objectives):
            raise ConfigurationError("objectives must be unique")
        if not 0.0 <= self.standby_fraction <= 1.0:
            raise ConfigurationError("standby_fraction must be in [0, 1]")
        if self.architectures is not None and not self.architectures:
            raise ConfigurationError(
                "architectures must be None or a non-empty tuple"
            )
        if self.probe_points < 0:
            raise ConfigurationError("probe_points must be >= 0")
        if self.max_evaluations is not None and self.max_evaluations < 1:
            raise ConfigurationError(
                "max_evaluations must be None or >= 1"
            )

    @classmethod
    def from_axes(
        cls,
        discrete_axes: Mapping[str, Sequence[Any]] | None = None,
        **kwargs: Any,
    ) -> "ExploreSpec":
        """Build a spec from a mapping of discrete axis name to values."""
        normalised = tuple(
            (name, tuple(values))
            for name, values in (discrete_axes or {}).items()
        )
        return cls(discrete_axes=normalised, **kwargs)

    # ------------------------------------------------------------- geometry
    @property
    def coarse_stride(self) -> int:
        """Target-grid index distance between adjacent coarse points."""
        return (self.target_steps - 1) // (self.coarse_steps - 1)

    @property
    def n_points(self) -> int:
        """Number of discrete grid points."""
        n = 1
        for _, values in self.discrete_axes:
            n *= len(values)
        return n

    @property
    def n_cells(self) -> int:
        """Target cells the explorer answers for: points x axis values."""
        return self.n_points * self.target_steps

    def value_at(self, index: int) -> float:
        """The axis value of one target-grid index (both engines share
        this exact expression, so filled and evaluated cells agree)."""
        _, lo, hi = self.axis
        return lo + (hi - lo) * index / (self.target_steps - 1)

    def axis_values(self) -> np.ndarray:
        """Every target-grid axis value, :meth:`value_at` order."""
        return np.array(
            [self.value_at(k) for k in range(self.target_steps)]
        )

    def coarse_indices(self) -> list[int]:
        """Target-grid indices of the coarse grid."""
        return list(
            range(0, self.target_steps, self.coarse_stride)
        )

    def probe_indices(self) -> list[int]:
        """The seeded probe indices (sorted, disjoint from the coarse
        grid); a pure function of ``(seed, probe_points, grid shape)``."""
        if not self.probe_points:
            return []
        pool = sorted(
            set(range(self.target_steps)) - set(self.coarse_indices())
        )
        if not pool:
            return []
        rng = np.random.default_rng(self.seed)
        take = min(self.probe_points, len(pool))
        picked = rng.choice(len(pool), size=take, replace=False)
        return sorted(pool[int(i)] for i in picked)

    def points(self) -> list[ExplorePoint]:
        """Expand the discrete axes into grid points, deterministic order
        (last axis fastest, exactly like the sweep grid)."""
        if not self.discrete_axes:
            return [ExplorePoint(0)]
        names = [name for name, _ in self.discrete_axes]
        out = []
        for index, combo in enumerate(
            itertools.product(*(values for _, values in self.discrete_axes))
        ):
            out.append(ExplorePoint(index, tuple(zip(names, combo))))
        return out

    def config_at(self, point: ExplorePoint, index: int) -> Any:
        """Bind one (discrete point, axis index) cell to a configuration."""
        overrides: dict[str, Any] = dict(point.overrides)
        overrides[self.axis[0]] = self.value_at(index)
        return replace(self.base_config, **overrides)

    def describe(self) -> dict[str, Any]:
        """JSON-ready summary of the search space (for report headers)."""
        return {
            "workload": self.workload,
            "axis": {
                "field": self.axis[0],
                "lo": self.axis[1],
                "hi": self.axis[2],
            },
            "coarse_steps": self.coarse_steps,
            "target_steps": self.target_steps,
            "discrete_axes": {
                name: list(values) for name, values in self.discrete_axes
            },
            "duty_cycle_steps": self.duty_cycle_steps,
            "objectives": list(self.objectives),
            "architectures": (
                list(self.architectures) if self.architectures else None
            ),
            "standby_fraction": self.standby_fraction,
            "probe_points": self.probe_points,
            "seed": self.seed,
            "max_evaluations": self.max_evaluations,
            "on_error": self.on_error,
        }
