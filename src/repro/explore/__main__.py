"""CLI entry point: ``PYTHONPATH=src python -m repro.explore``.

With no arguments it explores the reference space — the paper's DDC over
an input-rate axis spanning both Cyclone f_max thresholds — adaptively
and prints the JSON frontier report.  ``--store PATH`` warm-starts the
report cache from (and spills it back to) an on-disk store so repeated
explorations across processes skip re-running the models; ``--verify``
runs the adaptive engine *and* the dense scalar oracle, requires their
reports byte-identical, and reports the measured speedup and how few
cells the adaptive engine actually evaluated.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..core.evaluator import ReportCache
from ..errors import ConfigurationError, ReproError
from ..telemetry import tracing
from ..telemetry.cli import (
    add_telemetry_args,
    cache_counts,
    cache_stats_line,
    print_metrics,
)
from ..workloads import get as get_workload
from .refine import run_explore
from .report import FORMATS
from .spec import ExploreSpec
from .store import ReportStore


def _parse_axis(text: str) -> tuple[str, float, float]:
    """``field=lo:hi`` for the continuous axis."""
    name, sep, raw = text.partition("=")
    lo, sep2, hi = raw.partition(":")
    if not sep or not sep2:
        raise ConfigurationError(
            f"--axis expects field=lo:hi, got {text!r}"
        )
    try:
        return name.strip(), float(lo), float(hi)
    except ValueError:
        raise ConfigurationError(
            f"axis bounds must be numbers, got {raw!r}"
        ) from None


def _parse_discrete(text: str) -> tuple[str, tuple]:
    """``name=v1,v2,...`` — the sweep CLI's axis grammar, shared."""
    from ..sweep.__main__ import _parse_axis as parse_value_axis

    return parse_value_axis(text, flag="--discrete-axis")


def build_spec(args: argparse.Namespace) -> ExploreSpec:
    """Translate parsed CLI arguments into an ExploreSpec."""
    kwargs: dict = {}
    if args.axis:
        kwargs["axis"] = _parse_axis(args.axis)
    if args.architectures:
        kwargs["architectures"] = tuple(
            a.strip() for a in args.architectures.split(",") if a.strip()
        )
    if args.objectives:
        kwargs["objectives"] = tuple(
            o.strip() for o in args.objectives.split(",") if o.strip()
        )
    return ExploreSpec(
        coarse_steps=args.coarse,
        target_steps=args.target,
        discrete_axes=tuple(
            _parse_discrete(a) for a in args.discrete_axis
        ),
        duty_cycle_steps=args.steps,
        standby_fraction=args.standby_fraction,
        probe_points=args.probes,
        seed=args.seed,
        max_evaluations=args.budget,
        on_error=args.on_error,
        workload=args.workload,
        **kwargs,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="Design-space exploration: Pareto frontiers over "
        "configuration axes with adaptive refinement.",
    )
    from ..workloads import available, default_name

    parser.add_argument(
        "--workload", default=default_name(), metavar="NAME",
        help="workload to explore, one of: "
        f"{', '.join(available())} (default: %(default)s, i.e. "
        "$REPRO_WORKLOAD or ddc)",
    )
    parser.add_argument(
        "--axis", default=None, metavar="FIELD=LO:HI",
        help="continuous refinement axis (default: the workload's "
        "reference axis; for ddc, input_rate_hz over the reference "
        "space)",
    )
    parser.add_argument(
        "--coarse", type=int, default=5,
        help="initial coarse grid size (default: %(default)s)",
    )
    parser.add_argument(
        "--target", type=int, default=65,
        help="target axis resolution; (target-1) must be (coarse-1)*2^k "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--discrete-axis", action="append", default=[],
        metavar="FIELD=V1,V2,...",
        help="add a discrete DDCConfig axis (repeatable)",
    )
    parser.add_argument(
        "--steps", type=int, default=101,
        help="duty-cycle grid size over [0, 1] (default: %(default)s)",
    )
    parser.add_argument(
        "--objectives", default=None, metavar="NAME,NAME,...",
        help="Pareto objectives (default: power_w,area_mm2)",
    )
    parser.add_argument(
        "--architectures", default=None, metavar="NAME,NAME,...",
        help="restrict candidates to these architecture names",
    )
    parser.add_argument(
        "--standby-fraction", type=float, default=0.05,
        help="fixed-function idle power as a fraction of active power "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--probes", type=int, default=0,
        help="extra seeded round-0 probe cells (default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="probe-draw seed (default: %(default)s)",
    )
    parser.add_argument(
        "--budget", type=int, default=None,
        help="max evaluated cells per discrete point (default: none)",
    )
    parser.add_argument(
        "--on-error", choices=("raise", "skip", "retry"), default="raise",
        help="cell-failure policy: raise = abort on the first failure, "
        "skip = record it and continue, retry = retry the cell first and "
        "record only if every attempt fails; a report with recorded "
        "failures is marked partial and exits with status 3 "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--engine", choices=("adaptive", "dense"), default="adaptive",
        help="evaluation path (dense = the scalar oracle grid; "
        "default: %(default)s)",
    )
    parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="on-disk report store: warm-start the report cache from it "
        "and spill the cache (plus this frontier) back after the run",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="json",
        help="report format (default: %(default)s)",
    )
    parser.add_argument(
        "--output", default="-", metavar="PATH",
        help="report path, '-' = stdout (default: stdout)",
    )
    parser.add_argument(
        "--summary", action="store_true",
        help="print the human-readable frontier map instead of the report",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="run BOTH engines, require byte-identical reports, report "
        "the measured speedup; exits 1 on any divergence",
    )
    add_telemetry_args(parser)
    args = parser.parse_args(argv)

    try:
        with tracing(args.trace):
            return _run(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _run(args: argparse.Namespace) -> int:
    """The CLI body, inside the (possibly no-op) tracing context."""
    spec = build_spec(args)
    cache_before = cache_counts(spec.workload)
    try:
        if args.store and (args.verify or args.engine != "adaptive"):
            # Silently skipping persistence would strand the user's next
            # warm start; say so instead.
            raise ConfigurationError(
                "--store needs the adaptive engine (the dense oracle and "
                "--verify run deliberately uncached)"
            )
        if args.verify:
            # Fresh caches/evaluators per engine so the comparison (and
            # the timing) is cold-start honest on both sides; warm the
            # import paths first so neither pays first-call costs.
            workload = get_workload(spec.workload)
            warm = ExploreSpec(
                axis=spec.axis, coarse_steps=2, target_steps=2,
                duty_cycle_steps=2, workload=spec.workload,
            )
            run_explore(
                warm, "adaptive", workload.evaluator(cache=ReportCache())
            )
            run_explore(warm, "dense", workload.evaluator())
            t0 = time.perf_counter()
            adaptive = run_explore(
                spec, "adaptive", workload.evaluator(cache=ReportCache())
            )
            t_adaptive = time.perf_counter() - t0
            t0 = time.perf_counter()
            dense = run_explore(spec, "dense", workload.evaluator())
            t_dense = time.perf_counter() - t0
            adaptive_bytes = adaptive.render(args.format).encode()
            dense_bytes = dense.render(args.format).encode()
            if adaptive_bytes != dense_bytes:
                print(
                    "VERIFY FAILED: adaptive and dense-oracle frontier "
                    "reports differ",
                    file=sys.stderr,
                )
                return 1
            print(
                f"verify OK: {len(adaptive_bytes)} bytes identical across "
                f"engines ({spec.n_cells} cells at target resolution)"
            )
            print(
                f"  adaptive evaluated {adaptive.evaluations}/"
                f"{spec.n_cells} cells in {t_adaptive * 1e3:.2f} ms; "
                f"dense oracle {dense.evaluations} cells in "
                f"{t_dense * 1e3:.2f} ms; speedup "
                f"{t_dense / t_adaptive:.1f}x"
            )
            if args.metrics:
                print_metrics(cache_before, spec.workload)
            return 0

        store = ReportStore(args.store) if args.store else None
        evaluator = None
        if args.engine == "adaptive":
            evaluator = get_workload(spec.workload).shared_evaluator()
            if store is not None:
                loaded = store.load(evaluator.cache, evaluator.models)
                print(
                    f"store: warm-started {loaded} report(s) from "
                    f"{args.store}",
                    file=sys.stderr,
                )
                if store.last_salvaged:
                    print(
                        f"store: salvaged a damaged store file — "
                        f"{store.last_salvaged} bad line(s) quarantined "
                        f"to {store.quarantine_path}",
                        file=sys.stderr,
                    )
                checkpoint = store.load_checkpoint(spec, evaluator.models)
                if checkpoint is not None:
                    done = sum(
                        len(cells) for cells in checkpoint["evaluated"]
                    )
                    print(
                        f"store: resuming from checkpoint — round "
                        f"{checkpoint['round']}, {done} cell(s) already "
                        f"evaluated, {len(checkpoint['pending'])} pending",
                        file=sys.stderr,
                    )
        report = run_explore(
            spec, engine=args.engine, evaluator=evaluator, store=store
        )
        if store is not None and evaluator is not None:
            total = store.save(evaluator.cache)
            store.save_frontier(
                spec, evaluator.models, report.to_json_doc()
            )
            print(
                f"store: spilled cache ({total} report(s)) and frontier "
                f"to {args.store}",
                file=sys.stderr,
            )
        warm_line = None
        if evaluator is not None and store is not None:
            hits = evaluator.cache.hits - cache_before[0]
            misses = evaluator.cache.misses - cache_before[1]
            lookups = hits + misses
            if lookups:
                warm_line = (
                    f"store warm-hit rate: {hits / lookups:.1%} "
                    f"({hits}/{lookups} lookups served without a model "
                    f"run)"
                )
        if args.summary:
            print(report.summary())
            print(cache_stats_line(cache_before, spec.workload))
            if warm_line:
                print(warm_line)
        else:
            report.write(args.output, args.format)
            if args.output != "-":
                print(f"wrote {args.output}")
        if args.metrics:
            print_metrics(
                cache_before, spec.workload,
                extra=[warm_line] if warm_line else None,
            )
        if report.partial:
            failed = sum(
                1 for p in report.points for cell in p.cells if cell.failed
            )
            print(
                f"warning: partial report — {failed} cell(s) failed "
                f"under --on-error {spec.on_error}",
                file=sys.stderr,
            )
            return 3
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
