"""Design-space exploration (``repro.explore``).

The paper is, at heart, a design-space study: which architecture wins
the DDC under which conditions.  The sweep subsystem evaluates fixed
grids; this package *searches*:

- :class:`~repro.explore.spec.ExploreSpec` — a declarative search
  space: one continuous refinement axis over a float
  :class:`~repro.config.DDCConfig` field, discrete configuration axes,
  a duty-cycle grid, Pareto objectives drawn from the implementation
  reports, deterministic seeding;
- :mod:`~repro.explore.pareto` — exact non-dominated frontiers,
  vectorised over whole :class:`~repro.archs.base.BatchImplementationReport`
  stacks, with a scalar double-loop oracle twin;
- :mod:`~repro.explore.refine` — adaptive refinement: coarse grid, then
  bisection of exactly the cells whose winner or frontier membership
  flips across a boundary, each round one batched model pass; plus the
  dense scalar oracle engine it is verified against;
- :mod:`~repro.explore.store` — a persistent on-disk JSONL spill of the
  per-process :class:`~repro.core.evaluator.ReportCache` and frontier
  snapshots, content-hash invalidated, so explorations warm-start
  across runs and processes.

CLI::

    PYTHONPATH=src python -m repro.explore                 # reference space
    PYTHONPATH=src python -m repro.explore --verify        # adaptive == dense
    PYTHONPATH=src python -m repro.explore \\
        --store runs/ddc.jsonl --summary                   # warm-started
"""

from .pareto import (
    frontier_from_batches,
    frontier_scalar,
    objective_values,
    pareto_mask,
    pareto_mask_scalar,
)
from .refine import (
    ENGINES,
    ArchSnapshot,
    CellOutcome,
    CellSnapshot,
    PointExploration,
    run_explore,
)
from .report import FORMATS, SCHEMA, ExploreReport
from .spec import (
    CONTINUOUS_AXES,
    OBJECTIVES,
    ExplorePoint,
    ExploreSpec,
)
from .store import ReportStore, model_digest, space_digest

__all__ = [
    "CONTINUOUS_AXES",
    "ENGINES",
    "FORMATS",
    "OBJECTIVES",
    "SCHEMA",
    "ArchSnapshot",
    "CellOutcome",
    "CellSnapshot",
    "ExplorePoint",
    "ExploreReport",
    "ExploreSpec",
    "PointExploration",
    "ReportStore",
    "frontier_from_batches",
    "frontier_scalar",
    "model_digest",
    "objective_values",
    "pareto_mask",
    "pareto_mask_scalar",
    "run_explore",
    "space_digest",
]
