"""Deprecation shims for renamed keyword arguments.

The repo's documented vocabulary (see ``benchmarks/README.md``):
``engine=`` always selects an *execution path* for the same bit-true
result — ``NCO.generate(engine=...)``, ``Simulator.compile(engine=...)``,
``CPU.run(engine=...)``, the sweep/explore engines, and (since the
workload API pass) ``RTLDDC.run(engine=...)`` and
``run_ddc_on_tile(engine=...)``.  ``mode=`` is reserved for *algorithmic*
variants that change the computed answer (e.g. ``NCOMode.LUT`` vs
``NCOMode.TAYLOR``).

``RTLDDC.run`` and ``run_ddc_on_tile`` historically spelled their
execution engine ``mode=``; :func:`resolve_engine_kwarg` keeps that
spelling working behind a :class:`DeprecationWarning` so downstream
callers migrate on their own schedule.
"""

from __future__ import annotations

import warnings

from .errors import ConfigurationError


def resolve_engine_kwarg(
    label: str,
    engine: str | None,
    mode: str | None,
    default: str,
) -> str:
    """Resolve the ``engine=``/legacy ``mode=`` pair to one engine name.

    ``mode=`` (the deprecated spelling) still works and warns; passing
    both spellings with different values is a
    :class:`~repro.errors.ConfigurationError` rather than a silent pick.
    """
    if mode is not None:
        warnings.warn(
            f"{label}: the mode= keyword is deprecated; spell the "
            f"execution engine engine={mode!r}",
            DeprecationWarning,
            stacklevel=3,
        )
        if engine is not None and engine != mode:
            raise ConfigurationError(
                f"{label}: conflicting engine={engine!r} and legacy "
                f"mode={mode!r}"
            )
        return mode
    return engine if engine is not None else default
