"""Deployment-scenario analysis (paper Section 7).

The conclusion distinguishes two regimes:

- **static** (Section 7.1): the DDC runs continuously (mobile phone,
  single-mode radio).  Energy = DDC power, full stop; the ASIC wins.
- **reconfigurable** (Section 7.2): the DDC is needed only a fraction of
  the time (PDA occasionally tuning DRM/DAB/GSM).  A reconfigurable fabric
  can spend its idle time on *other* tasks, so the fair comparison charges
  a fixed-function chip for the idle hardware it wastes while crediting a
  reconfigurable one for the work it hosts instead.

:class:`ScenarioAnalysis` quantifies that argument.  For duty cycle ``d``
(fraction of time the DDC is active) the effective cost of an architecture
is::

    cost(d) = d * P_active + (1 - d) * P_idle_effective

where ``P_idle_effective`` is the standby power for a fixed-function chip,
and for a reconfigurable one the *displaced* power the fabric saves by
hosting another task (modelled as zero cost when ``reusable`` — its idle
time is not wasted).  :func:`duty_cycle_crossover` finds the duty cycle at
which two architectures swap rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ScenarioCandidate:
    """An architecture as seen by the scenario analysis.

    Parameters
    ----------
    name:
        Display name.
    active_power_w:
        Power while performing the DDC.
    standby_power_w:
        Power while idle (leakage / standby mode).
    reusable:
        True if the fabric can host other work while the DDC is idle
        (FPGA, Montium, GPP) — its idle time is then not charged to the
        DDC budget.
    """

    name: str
    active_power_w: float
    standby_power_w: float = 0.0
    reusable: bool = False

    def effective_power_w(self, duty_cycle: float) -> float:
        """Average power attributable to the DDC function at ``duty_cycle``."""
        if not 0.0 <= duty_cycle <= 1.0:
            raise ConfigurationError("duty cycle must be in [0, 1]")
        idle = 0.0 if self.reusable else self.standby_power_w
        return duty_cycle * self.active_power_w + (1 - duty_cycle) * idle


@dataclass(frozen=True)
class ScenarioResult:
    """Winner and per-candidate powers at one duty cycle."""

    duty_cycle: float
    winner: str
    powers_w: dict[str, float]


class ScenarioAnalysis:
    """Evaluates candidates across duty cycles (static = 1.0)."""

    def __init__(self, candidates: Sequence[ScenarioCandidate]) -> None:
        if not candidates:
            raise ConfigurationError("need at least one candidate")
        names = [c.name for c in candidates]
        if len(set(names)) != len(names):
            raise ConfigurationError("candidate names must be unique")
        self.candidates = list(candidates)

    def evaluate(self, duty_cycle: float) -> ScenarioResult:
        """Rank candidates at one duty cycle."""
        powers = {
            c.name: c.effective_power_w(duty_cycle) for c in self.candidates
        }
        winner = min(powers, key=lambda k: powers[k])
        return ScenarioResult(duty_cycle, winner, powers)

    def static_scenario(self) -> ScenarioResult:
        """The paper's Section 7.1: full-time DDC."""
        return self.evaluate(1.0)

    def sweep(self, steps: int = 101) -> list[ScenarioResult]:
        """Evaluate duty cycles 0..1 on a regular grid."""
        if steps < 2:
            raise ConfigurationError("steps must be >= 2")
        return [self.evaluate(i / (steps - 1)) for i in range(steps)]

    def winning_regions(self, steps: int = 1001) -> list[tuple[float, float, str]]:
        """(start, end, winner) intervals of duty cycle."""
        results = self.sweep(steps)
        regions: list[tuple[float, float, str]] = []
        start = 0.0
        current = results[0].winner
        for r in results[1:]:
            if r.winner != current:
                regions.append((start, r.duty_cycle, current))
                start = r.duty_cycle
                current = r.winner
        regions.append((start, 1.0, current))
        return regions


def duty_cycle_crossover(
    a: ScenarioCandidate, b: ScenarioCandidate
) -> float | None:
    """Duty cycle where candidates ``a`` and ``b`` cost the same.

    Solves ``d*Pa + (1-d)*Ia = d*Pb + (1-d)*Ib`` for ``d``; returns ``None``
    when the lines are parallel or cross outside ``[0, 1]``.
    """
    ia = 0.0 if a.reusable else a.standby_power_w
    ib = 0.0 if b.reusable else b.standby_power_w
    denom = (a.active_power_w - ia) - (b.active_power_w - ib)
    if denom == 0.0:
        return None
    d = (ib - ia) / denom
    if not 0.0 <= d <= 1.0:
        return None
    return d
