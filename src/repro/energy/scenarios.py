"""Deployment-scenario analysis (paper Section 7).

The conclusion distinguishes two regimes:

- **static** (Section 7.1): the DDC runs continuously (mobile phone,
  single-mode radio).  Energy = DDC power, full stop; the ASIC wins.
- **reconfigurable** (Section 7.2): the DDC is needed only a fraction of
  the time (PDA occasionally tuning DRM/DAB/GSM).  A reconfigurable fabric
  can spend its idle time on *other* tasks, so the fair comparison charges
  a fixed-function chip for the idle hardware it wastes while crediting a
  reconfigurable one for the work it hosts instead.

:class:`ScenarioAnalysis` quantifies that argument.  For duty cycle ``d``
(fraction of time the DDC is active) the effective cost of an architecture
is::

    cost(d) = d * P_active + (1 - d) * P_idle_effective

where ``P_idle_effective`` is the standby power for a fixed-function chip,
and for a reconfigurable one the *displaced* power the fabric saves by
hosting another task (modelled as zero cost when ``reusable`` — its idle
time is not wasted).  :func:`duty_cycle_crossover` finds the duty cycle at
which two architectures swap rank.

Two evaluation paths exist and are **bit-identical**:

- the scalar path (:meth:`ScenarioAnalysis.evaluate`) — one duty cycle at
  a time, the seed behaviour and the oracle;
- the batched path (:meth:`ScenarioAnalysis.cost_batch` /
  :meth:`ScenarioAnalysis.evaluate_batch`) — whole numpy duty-cycle x
  candidate grids in one pass, which :meth:`ScenarioAnalysis.sweep`,
  :meth:`ScenarioAnalysis.winning_regions` and the :mod:`repro.sweep`
  subsystem ride.  Both compute ``d*P_active + (1-d)*P_idle`` with the
  same operation order in float64, so the grids agree bit for bit (pinned
  by the Hypothesis suite in ``tests/test_energy.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ScenarioCandidate:
    """An architecture as seen by the scenario analysis.

    Parameters
    ----------
    name:
        Display name.
    active_power_w:
        Power while performing the DDC.
    standby_power_w:
        Power while idle (leakage / standby mode).
    reusable:
        True if the fabric can host other work while the DDC is idle
        (FPGA, Montium, GPP) — its idle time is then not charged to the
        DDC budget.
    """

    name: str
    active_power_w: float
    standby_power_w: float = 0.0
    reusable: bool = False

    @property
    def idle_power_w(self) -> float:
        """Idle power actually charged to the DDC budget."""
        return 0.0 if self.reusable else self.standby_power_w

    def effective_power_w(self, duty_cycle: float) -> float:
        """Average power attributable to the DDC function at ``duty_cycle``."""
        if not 0.0 <= duty_cycle <= 1.0:
            raise ConfigurationError(
                f"duty cycle {duty_cycle!r} is outside [0, 1]"
            )
        idle = self.idle_power_w
        return duty_cycle * self.active_power_w + (1 - duty_cycle) * idle


@dataclass(frozen=True)
class ScenarioResult:
    """Winner and per-candidate powers at one duty cycle."""

    duty_cycle: float
    winner: str
    powers_w: dict[str, float]


def duty_grid(steps: int) -> np.ndarray:
    """The regular duty-cycle grid 0..1 used by sweeps: ``i / (steps-1)``."""
    if steps < 2:
        raise ConfigurationError("steps must be >= 2")
    return np.arange(steps) / (steps - 1)


def check_duty_cycles(duty_cycles) -> np.ndarray:
    """Validate a 1-D float64 duty-cycle array, naming the offender.

    The shared gatekeeper of every batched duty-cycle consumer
    (:meth:`ScenarioAnalysis.cost_batch`, the sweep grids, the
    Monte-Carlo population engine): a value outside ``[0, 1]`` — or a
    ``nan``, which the old ``min()``/``max()`` check silently let
    through while the scalar path raised — fails with a
    :class:`~repro.errors.ConfigurationError` naming the first
    offending value and its position, instead of silently extrapolating
    negative idle energy.
    """
    d = np.asarray(duty_cycles, dtype=np.float64)
    if d.ndim != 1:
        raise ConfigurationError("duty_cycles must be one-dimensional")
    if d.size == 0:
        raise ConfigurationError("need at least one duty cycle")
    ok = (d >= 0.0) & (d <= 1.0)  # nan compares False on both sides
    if not ok.all():
        i = int(np.argmin(ok))
        raise ConfigurationError(
            f"duty cycle {float(d[i])!r} at index {i} is outside [0, 1]"
        )
    return d


def effective_power_samples(
    active_w: np.ndarray, idle_w: np.ndarray, duty_cycles: np.ndarray
) -> np.ndarray:
    """Per-sample effective powers in one fused pass.

    The sample-wise twin of :meth:`ScenarioAnalysis.cost_batch`: row
    ``k`` of ``active_w``/``idle_w`` holds the candidate powers seen by
    sample ``k`` (``nan`` marks an infeasible candidate), and the result
    ``[k, j]`` is ``d_k * active[k, j] + (1 - d_k) * idle[k, j]`` — the
    same operation order as the scalar
    :meth:`ScenarioCandidate.effective_power_w` in IEEE-754 double
    precision, so every element is bit-identical to the scalar call.
    ``duty_cycles`` must already be validated (:func:`check_duty_cycles`).
    """
    d = np.asarray(duty_cycles, dtype=np.float64)
    out = active_w * d[:, None]
    out += idle_w * (1.0 - d)[:, None]
    return out


def winner_counts(
    powers_w: np.ndarray, bin_indices: np.ndarray, n_bins: int
) -> np.ndarray:
    """Bincount-weighted winner aggregation over per-sample powers.

    ``counts[b, j]`` is the number of samples in duty bin ``b`` whose
    cheapest candidate is column ``j`` — the first minimum wins ties,
    matching the scalar path's ``min`` over an insertion-ordered dict.
    Samples whose row is all-``nan`` (no feasible candidate / dropped)
    are counted nowhere.
    """
    n, a = powers_w.shape
    nans = np.isnan(powers_w)
    masked = np.where(nans, np.inf, powers_w)
    valid = ~nans.all(axis=1)
    winners = np.argmin(masked, axis=1)
    flat = bin_indices[valid] * a + winners[valid]
    return np.bincount(flat, minlength=n_bins * a).reshape(n_bins, a)


@dataclass(frozen=True)
class ScenarioGrid:
    """A batched evaluation: duty-cycle x candidate effective powers.

    ``powers_w[k, j]`` is candidate ``names[j]`` at ``duty_cycles[k]``,
    bit-identical to ``candidates[j].effective_power_w(duty_cycles[k])``.
    """

    duty_cycles: np.ndarray
    names: tuple[str, ...]
    powers_w: np.ndarray

    @property
    def winner_indices(self) -> np.ndarray:
        """Index of the cheapest candidate per duty cycle (first wins ties,
        matching the scalar path's ``min`` over an insertion-ordered dict)."""
        return np.argmin(self.powers_w, axis=1)

    def winners(self) -> list[str]:
        """Winning candidate name per duty cycle."""
        # Fancy-index a string array instead of a python loop: the winner
        # column of a 100k-step grid materialises at C speed.
        return np.asarray(self.names, dtype=object)[
            self.winner_indices
        ].tolist()

    def results(self) -> list[ScenarioResult]:
        """Materialise the grid as scalar-identical :class:`ScenarioResult`s."""
        out: list[ScenarioResult] = []
        for k, d in enumerate(self.duty_cycles):
            powers = {
                name: float(self.powers_w[k, j])
                for j, name in enumerate(self.names)
            }
            out.append(
                ScenarioResult(float(d), self.names[self.winner_indices[k]],
                               powers)
            )
        return out

    def winning_regions(self) -> list[tuple[float, float, str]]:
        """(start, end, winner) intervals over the grid's duty-cycle span."""
        idx = self.winner_indices
        regions: list[tuple[float, float, str]] = []
        start = float(self.duty_cycles[0])
        current = int(idx[0])
        changes = np.nonzero(idx[1:] != idx[:-1])[0]
        for pos in changes:
            boundary = float(self.duty_cycles[pos + 1])
            regions.append((start, boundary, self.names[current]))
            start = boundary
            current = int(idx[pos + 1])
        regions.append(
            (start, float(self.duty_cycles[-1]), self.names[current])
        )
        return regions


class ScenarioAnalysis:
    """Evaluates candidates across duty cycles (static = 1.0)."""

    def __init__(self, candidates: Sequence[ScenarioCandidate]) -> None:
        if not candidates:
            raise ConfigurationError("need at least one candidate")
        names = [c.name for c in candidates]
        if len(set(names)) != len(names):
            raise ConfigurationError("candidate names must be unique")
        self.candidates = list(candidates)

    @property
    def names(self) -> tuple[str, ...]:
        """Candidate names in insertion order."""
        return tuple(c.name for c in self.candidates)

    def evaluate(self, duty_cycle: float) -> ScenarioResult:
        """Rank candidates at one duty cycle (the scalar oracle path)."""
        powers = {
            c.name: c.effective_power_w(duty_cycle) for c in self.candidates
        }
        winner = min(powers, key=lambda k: powers[k])
        return ScenarioResult(duty_cycle, winner, powers)

    def cost_batch(self, duty_cycles) -> np.ndarray:
        """Effective powers over a whole duty-cycle grid in one pass.

        Returns a ``(len(duty_cycles), len(candidates))`` float64 array
        whose every element is bit-identical to the scalar
        :meth:`ScenarioCandidate.effective_power_w` (same operation order
        in IEEE-754 double precision).
        """
        d = check_duty_cycles(duty_cycles)
        active = np.array([c.active_power_w for c in self.candidates])
        idle = np.array([c.idle_power_w for c in self.candidates])
        return d[:, None] * active[None, :] + (1 - d)[:, None] * idle[None, :]

    def evaluate_batch(self, duty_cycles) -> ScenarioGrid:
        """Batched :meth:`evaluate`: the whole grid plus winners."""
        d = np.asarray(duty_cycles, dtype=np.float64)
        return ScenarioGrid(
            duty_cycles=d, names=self.names, powers_w=self.cost_batch(d)
        )

    def static_scenario(self) -> ScenarioResult:
        """The paper's Section 7.1: full-time DDC."""
        return self.evaluate(1.0)

    def sweep(self, steps: int = 101) -> list[ScenarioResult]:
        """Evaluate duty cycles 0..1 on a regular grid (batched path)."""
        return self.evaluate_batch(duty_grid(steps)).results()

    def winning_regions(self, steps: int = 1001) -> list[tuple[float, float, str]]:
        """(start, end, winner) intervals of duty cycle (batched path)."""
        return self.evaluate_batch(duty_grid(steps)).winning_regions()


def duty_cycle_crossover(
    a: ScenarioCandidate, b: ScenarioCandidate
) -> float | None:
    """Duty cycle where candidates ``a`` and ``b`` cost the same.

    Solves ``d*Pa + (1-d)*Ia = d*Pb + (1-d)*Ib`` for ``d``; returns ``None``
    when the lines are parallel or cross outside ``[0, 1]``.
    """
    ia = a.idle_power_w
    ib = b.idle_power_w
    denom = (a.active_power_w - ia) - (b.active_power_w - ib)
    if denom == 0.0:
        return None
    d = (ib - ia) / denom
    if not 0.0 <= d <= 1.0:
        return None
    return d


def duty_cycle_crossover_batch(
    candidates: Sequence[ScenarioCandidate],
) -> np.ndarray:
    """All pairwise crossovers in one pass.

    Returns an ``(n, n)`` matrix whose ``[i, j]`` entry equals
    ``duty_cycle_crossover(candidates[i], candidates[j])`` bit for bit,
    with ``nan`` standing in for the scalar path's ``None`` (parallel
    cost lines, or a crossing outside ``[0, 1]``).
    """
    if not candidates:
        raise ConfigurationError("need at least one candidate")
    active = np.array([c.active_power_w for c in candidates])
    idle = np.array([c.idle_power_w for c in candidates])
    slope = active - idle
    denom = slope[:, None] - slope[None, :]
    num = idle[None, :] - idle[:, None]
    with np.errstate(divide="ignore", invalid="ignore"):
        d = num / denom
    d[(denom == 0.0) | (d < 0.0) | (d > 1.0)] = np.nan
    return d
