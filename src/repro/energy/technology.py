"""CMOS technology nodes and first-order power scaling.

Section 3.1.2: "The common dependency of the dynamic power consumption is
that it is linear related to the total capacitance (C) and frequency and
quadratic related to the voltage (V).  With reduction from 0.25 µm to
0.13 µm the capacity goes down with a factor 0.25/0.13.  The same goes for
the voltage that drops with a factor 2.5/1.2.  This makes it reasonable that
the power consumption decreases with a factor (2.5/1.2)^2 * (0.25/0.13)."

:func:`scale_power` implements exactly that rule; the module also carries
the four nodes appearing in the paper with their nominal supply voltages.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class TechnologyNode:
    """A CMOS process node: feature size (µm) and nominal supply (V)."""

    feature_um: float
    vdd: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.feature_um <= 0:
            raise ConfigurationError("feature size must be positive")
        if self.vdd <= 0:
            raise ConfigurationError("supply voltage must be positive")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label or f"{self.feature_um}um@{self.vdd}V"


#: The four nodes used in the paper.
TECH_250NM = TechnologyNode(0.25, 2.5, "0.25um")
TECH_180NM = TechnologyNode(0.18, 1.8, "0.18um")
TECH_130NM = TechnologyNode(0.13, 1.2, "0.13um")
TECH_90NM = TechnologyNode(0.09, 1.2, "0.09um")


def scaling_factor(src: TechnologyNode, dst: TechnologyNode) -> float:
    """Dynamic-power reduction factor from ``src`` to ``dst``.

    ``(V_src/V_dst)^2 * (L_src/L_dst)`` — the paper's rule.  A factor > 1
    means the destination node consumes less power.
    """
    return (src.vdd / dst.vdd) ** 2 * (src.feature_um / dst.feature_um)


def scale_power(
    power_w: float, src: TechnologyNode, dst: TechnologyNode
) -> float:
    """Scale a power figure from ``src`` technology to ``dst``.

    Reproduces the paper's estimates: 115 mW at 0.25 µm -> 13.8 mW at
    0.13 µm; 27 mW at 0.18 µm -> 8.7 mW.
    """
    if power_w < 0:
        raise ConfigurationError("power must be non-negative")
    return power_w / scaling_factor(src, dst)
