"""Energy accounting: technology scaling, power reports, comparison.

The paper's headline result (Table 7) is a power comparison across
architectures built in different technologies (0.25, 0.18, 0.13, 0.09 µm);
to compare fairly it scales every figure to 0.13 µm / 1.2 V using the
first-order CMOS dynamic-power rule

    P2 = P1 / ((V1/V2)^2 * (L1/L2)).

This package implements that rule (:mod:`~repro.energy.technology`), the
per-architecture report structures, the Table 7 builder
(:mod:`~repro.energy.comparison`) and the duty-cycle scenario analysis of
the conclusion (:mod:`~repro.energy.scenarios`).
"""

from .technology import (
    TechnologyNode,
    TECH_250NM,
    TECH_180NM,
    TECH_130NM,
    TECH_90NM,
    scale_power,
    scaling_factor,
)
from .comparison import ArchitectureComparison, ComparisonRow
from .scenarios import (
    ScenarioAnalysis,
    ScenarioCandidate,
    ScenarioGrid,
    ScenarioResult,
    duty_cycle_crossover,
    duty_cycle_crossover_batch,
    duty_grid,
)

__all__ = [
    "TechnologyNode",
    "TECH_250NM",
    "TECH_180NM",
    "TECH_130NM",
    "TECH_90NM",
    "scale_power",
    "scaling_factor",
    "ArchitectureComparison",
    "ComparisonRow",
    "ScenarioAnalysis",
    "ScenarioCandidate",
    "ScenarioGrid",
    "ScenarioResult",
    "duty_cycle_crossover",
    "duty_cycle_crossover_batch",
    "duty_grid",
]
