"""Cross-architecture energy comparison — the builder of Table 7.

Collects :class:`~repro.archs.base.ImplementationReport` objects from the
architecture models, adds the 0.13 µm-scaled estimates the paper derives
(rows marked "(estimated)" in Table 7), and renders/returns the comparison.

Scaling convention follows the paper exactly:

- figures from *larger* nodes (GC4016 at 0.25 µm, low-power ASIC at
  0.18 µm) are scaled *down* with the full dynamic-power rule;
- the Cyclone II figure (0.09 µm) is scaled *up* to 0.13 µm by the
  capacitance ratio only (voltage is 1.2 V at both nodes), and — like the
  paper — only its *dynamic* component is scaled (31.11 mW -> 44.94 mW);
- native-0.13 µm figures (ARM, Cyclone I, Montium) are left untouched.

The row objects keep both the native and scaled power so benches can print
the published table shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ConfigurationError
from .scenarios import ScenarioAnalysis, ScenarioCandidate, ScenarioGrid
from .technology import TECH_130NM, TechnologyNode, scale_power

if TYPE_CHECKING:  # imported only for typing to avoid a package cycle
    from typing import Mapping

    from ..archs.base import ImplementationReport


@dataclass(frozen=True)
class ComparisonRow:
    """One architecture's row of Table 7."""

    architecture: str
    technology: TechnologyNode
    clock_hz: float
    power_w: float
    power_scaled_w: float
    area_mm2: float | None
    feasible: bool
    notes: str = ""

    @property
    def power_mw(self) -> float:
        """Native power in mW."""
        return self.power_w * 1e3

    @property
    def power_scaled_mw(self) -> float:
        """Power scaled to the reference node, in mW."""
        return self.power_scaled_w * 1e3


class ArchitectureComparison:
    """Accumulates implementation reports and produces the summary table."""

    def __init__(self, reference: TechnologyNode = TECH_130NM) -> None:
        self.reference = reference
        self._rows: list[ComparisonRow] = []

    def add(
        self,
        report: "ImplementationReport",
        scaled_power_w: float | None = None,
    ) -> ComparisonRow:
        """Add one architecture's report.

        ``scaled_power_w`` overrides the default scaling — used for the
        Cyclone II row whose published estimate scales only the dynamic
        component.
        """
        if scaled_power_w is None:
            scaled_power_w = scale_power(
                report.power_w, report.technology, self.reference
            )
        row = ComparisonRow(
            architecture=report.architecture,
            technology=report.technology,
            clock_hz=report.clock_hz,
            power_w=report.power_w,
            power_scaled_w=scaled_power_w,
            area_mm2=report.area_mm2,
            feasible=report.feasible,
            notes=report.notes,
        )
        self._rows.append(row)
        return row

    @property
    def rows(self) -> list[ComparisonRow]:
        """Rows in insertion order."""
        return list(self._rows)

    def best(self, scaled: bool = True, feasible_only: bool = True) -> ComparisonRow:
        """Lowest-power architecture (the paper's 'optimal' question)."""
        candidates = [
            r for r in self._rows if (r.feasible or not feasible_only)
        ]
        if not candidates:
            raise ConfigurationError("no (feasible) rows in the comparison")
        key = (lambda r: r.power_scaled_w) if scaled else (lambda r: r.power_w)
        return min(candidates, key=key)

    def ranking(self, scaled: bool = True) -> list[ComparisonRow]:
        """All rows sorted by (scaled) power, ascending."""
        key = (lambda r: r.power_scaled_w) if scaled else (lambda r: r.power_w)
        return sorted(self._rows, key=key)

    def scenario_grid(
        self,
        duty_cycles,
        reusable: "Mapping[str, bool] | None" = None,
        standby_fraction: float = 0.05,
        scaled: bool = False,
        feasible_only: bool = True,
    ) -> ScenarioGrid:
        """Batched duty-cycle x candidate grid straight from the comparison.

        The batched entry point of the energy layer: turns the accumulated
        rows into :class:`~repro.energy.scenarios.ScenarioCandidate` s
        (``reusable`` maps architecture name to fabric reusability,
        defaulting to fixed-function; idle power is ``standby_fraction``
        of active power) and evaluates the whole numpy grid in one pass.
        """
        if not 0.0 <= standby_fraction <= 1.0:
            raise ConfigurationError("standby_fraction must be in [0, 1]")
        reusable = reusable or {}
        rows = [r for r in self._rows if (r.feasible or not feasible_only)]
        if not rows:
            raise ConfigurationError("no (feasible) rows in the comparison")
        candidates = []
        for r in rows:
            power = r.power_scaled_w if scaled else r.power_w
            candidates.append(
                ScenarioCandidate(
                    name=r.architecture,
                    active_power_w=power,
                    standby_power_w=power * standby_fraction,
                    reusable=bool(reusable.get(r.architecture, False)),
                )
            )
        return ScenarioAnalysis(candidates).evaluate_batch(duty_cycles)

    def render(self) -> str:
        """Fixed-width text table in the shape of the paper's Table 7."""
        header = (
            f"{'Solution':26s} {'Size':8s} {'Freq[MHz]':>10s} "
            f"{'Power[mW]':>10s} {'@0.13um[mW]':>12s} {'Area':>9s} {'RT':>3s}"
        )
        lines = [header, "-" * len(header)]
        for r in self._rows:
            area = f"{r.area_mm2:.1f}mm2" if r.area_mm2 is not None else "n.a."
            lines.append(
                f"{r.architecture:26s} {str(r.technology):8s} "
                f"{r.clock_hz / 1e6:>10.1f} {r.power_mw:>10.2f} "
                f"{r.power_scaled_mw:>12.2f} {area:>9s} "
                f"{'yes' if r.feasible else 'NO':>3s}"
            )
        return "\n".join(lines)
