"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or out-of-range values.

    Raised, for example, when a CIC decimation factor is not a positive
    integer, when a GC4016 channel is asked for a decimation outside the
    datasheet range 32..16384, or when a DDC spec's rates do not divide.
    """


class FixedPointError(ReproError):
    """Invalid fixed-point format or operation (e.g. negative word length)."""


class SimulationError(ReproError):
    """The cycle-driven simulator reached an inconsistent state.

    Examples: two drivers on one wire, a component reading a port that was
    never connected, or a schedule that violates a resource constraint.
    """


class AssemblyError(ReproError):
    """The GPP assembler rejected a program (unknown mnemonic, bad label...)."""


class ExecutionError(ReproError):
    """The GPP CPU simulator trapped (bad memory access, undefined register...)."""


class MappingError(ReproError):
    """A kernel could not be mapped onto an architecture's resources.

    Used by the Montium mapping when a program needs more ALUs, memories or
    cycles than the tile provides, and by the FPGA fitter when a design does
    not fit the selected device.
    """


class TaskFailedError(ReproError):
    """A parallel/retried task kept failing after every allowed attempt.

    Raised by :func:`repro.resilience.call_with_retry` and the retrying
    path of :func:`repro.parallel.parallel_map` once a
    :class:`~repro.resilience.RetryPolicy` is exhausted.  ``__cause__``
    carries the last underlying exception; ``attempts`` records how many
    times the task ran.
    """

    def __init__(self, message: str, attempts: int = 1) -> None:
        super().__init__(message)
        self.attempts = attempts


class PartialResultError(ReproError):
    """An execution-layer run degraded so far that no result survived.

    Raised when an ``on_error="skip"``/``"retry"`` sweep or exploration
    records a failure for *every* cell — a partial report with nothing in
    it is an error, not an empty success.
    """
