"""Ablation benches for the design choices DESIGN.md calls out.

- decimation-plan sweep: is the paper's 16 x 21 x 8 split near-optimal
  under the gate-activity cost model?
- NCO LUT-size vs SFDR;
- GPP optimisation level (spill slots on/off);
- FPGA measured toggle rate vs the paper's assumed 10 %;
- scenario sweep: the batched duty-cycle grid of ``repro.sweep`` vs the
  scalar Section 7 loop it replaced.
"""

from __future__ import annotations

from repro.core import DDCSpec, enumerate_plans
from repro.dsp.metrics import sfdr_db
from repro.dsp.nco import NCO


def test_bench_ablation_decimation_plans(benchmark):
    """Sweep decimation splits of 2688 and rank by estimated ASIC power.

    The sweep fans out over a thread pool (``workers=4``); the ordering
    contract (parallel == serial, input order) is pinned by the unit
    tests in ``tests/test_parallel.py``.
    """
    spec = DDCSpec()

    plans = benchmark(
        lambda: enumerate_plans(spec, min_rejection_db=50.0, workers=4)
    )
    assert plans, "no valid plans found"
    tuples = [p.as_tuple() for p in plans]
    assert (16, 21, 8) in tuples, "the paper's plan must be valid"
    ref = next(p for p in plans if p.as_tuple() == (16, 21, 8))
    best = plans[0]
    # The paper's hand-picked plan is within 2x of our model's optimum.
    assert ref.cost <= 2.0 * best.cost


def test_bench_ablation_nco_lut_size(benchmark):
    """SFDR vs LUT depth: ~6 dB per address bit until amplitude-limited."""
    n = 1 << 14
    fs = 64.512e6

    def run():
        out = {}
        for bits in (6, 8, 10, 12):
            nco = NCO(fs, 1.234e6, lut_addr_bits=bits)
            out[bits] = sfdr_db(nco.generate(n)[0])
        return out

    sfdr = benchmark(run)
    assert sfdr[8] > sfdr[6]
    assert sfdr[10] > sfdr[8]
    assert sfdr[10] >= 50.0


def test_bench_ablation_gpp_optimisation(benchmark):
    """Spill-slot (unoptimised-compiler) cost on the ARM cycle count.

    Section 4.2.2: "It should be possible to speed up the algorithm when
    it is completely optimized" — quantified here.  The two profiles ride
    the fast engine, run as a two-item parallel sweep, and now cover the
    full 2688-sample steady state (the seed interpreter could only afford
    672).
    """
    from repro.archs.gpp.profiler import profile_ddc
    from repro.parallel import parallel_map

    def run():
        slow, fast = parallel_map(
            lambda spill: profile_ddc(n_samples=2688, spill_slots=spill),
            (True, False),
            workers=2,
        )
        return slow.cycles_per_input_sample, fast.cycles_per_input_sample

    slow_c, fast_c = benchmark(run)
    assert fast_c < slow_c
    assert slow_c / fast_c < 2.0  # optimisation helps but is no panacea


def test_bench_ablation_scenario_sweep(benchmark):
    """The batched scenario grid vs what the scalar loop would cost.

    One ``repro.sweep`` pass over the full Table 7 duty-cycle grid; the
    result must reproduce the paper's conclusion at both ends of the
    duty-cycle axis.  (The persistent ``scenario_sweep`` bench in
    ``BENCH_dsp.json`` tracks the batched-vs-scalar speedup itself; this
    bench tracks the end-to-end sweep cost per PR.)
    """
    from repro.sweep import SweepSpec, run_sweep

    spec = SweepSpec(duty_cycle_steps=1001)

    report = benchmark(lambda: run_sweep(spec))
    point = report.points[0]
    assert point.static_winner == "Customised Low Power DDC"
    regions = point.winning_regions
    assert regions[-1][2] == "Customised Low Power DDC"
    reusable = dict(zip(point.names, point.reusable))
    assert reusable[regions[0][2]]  # low duty cycle -> reusable fabric


def test_bench_ablation_fpga_measured_toggle(benchmark):
    """Measured RTL toggle activity vs the paper's assumed 10 %.

    Runs the bit-true RTL DDC on a DRM-like stimulus, measures the mean
    internal toggle rate, and prices the design at both the measured and
    the assumed rate.
    """
    from repro.archs.fpga import (
        CYCLONE_I_EP1C3,
        FPGAPowerModel,
        RTLDDC,
        estimate_ddc_resources,
    )
    from repro.config import REFERENCE_DDC
    from repro.dsp.signals import drm_like_ofdm, quantize_to_adc

    x = quantize_to_adc(
        drm_like_ofdm(2688 * 3, REFERENCE_DDC.input_rate_hz, 10e6, seed=7),
        12,
    )

    def run():
        rtl = RTLDDC()
        res = rtl.run(x)
        return res.activity.mean_toggle_rate

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    usage = estimate_ddc_resources(CYCLONE_I_EP1C3)
    model = FPGAPowerModel(CYCLONE_I_EP1C3)
    p_assumed = model.estimate(usage, internal_toggle=0.10).total_mw
    p_measured = model.estimate(usage, internal_toggle=measured).total_mw
    assert 0.0 < measured < 0.6
    # Both estimates within the published sweep's envelope.
    assert 100.0 < p_assumed < 470.0
    assert 100.0 < p_measured < 470.0
