"""Bit-width ablation: data-path width vs output fidelity.

The paper fixes 12-bit buses ("the bus size is chosen in such a way that
overflow cannot occur") without justifying the width against signal
quality.  This bench sweeps the fixed-point DDC's data width and measures
agreement with the gold model — quantifying why 12 bits is a sensible
choice for a 12-bit ADC (more buys nothing, fewer costs ~6 dB/bit).
"""

from __future__ import annotations

import numpy as np

from repro import DDC, FixedDDC, DDCConfig
from repro.dsp.signals import quantize_to_adc, tone


def _fidelity_db(width: int, n_out: int = 32) -> float:
    cfg = DDCConfig(data_width=width)
    n = cfg.total_decimation * n_out
    fc = cfg.nco_frequency_hz
    xf = tone(n, fc + 3_000.0, cfg.input_rate_hz, amplitude=0.8)
    x = quantize_to_adc(xf, width)

    gold = DDC(cfg, lut_addr_bits=10)
    want = gold.process(x.astype(float) * 2.0 ** -(width - 1)).baseband
    fixed = FixedDDC(cfg, lut_addr_bits=10)
    got = fixed.process_to_float(x)
    m = min(len(want), len(got))
    err = got[8:m] - want[8:m]
    p_sig = np.mean(np.abs(want[8:m]) ** 2)
    p_err = np.mean(np.abs(err) ** 2)
    return float(10 * np.log10(p_sig / p_err))


def test_bench_ablation_data_width(benchmark):
    widths = (8, 10, 12, 14, 16)

    def run():
        return {w: _fidelity_db(w) for w in widths}

    fidelity = benchmark.pedantic(run, rounds=1, iterations=1)
    # Fidelity improves sharply from 8 to 10 bits (~4 dB/bit) ...
    assert fidelity[10] > fidelity[8] + 3.0
    # ... then plateaus: beyond ~10 bits the fixed-vs-gold gap is
    # dominated by a shared, width-independent error floor, so wider
    # buses buy nothing — the empirical case for the paper's 12 bits.
    for w in (12, 14, 16):
        assert abs(fidelity[w] - fidelity[10]) < 2.0
    # The paper's 12-bit path achieves a usable budget.
    assert fidelity[12] > 25.0
