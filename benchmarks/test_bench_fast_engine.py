"""Throughput benches of the fast-execution engine.

Complements ``test_bench_dsp_throughput.py`` with the new hot paths: the
compiled ``Simulator.step`` loop and the block-mode RTL DDC.  The
persistent before/after trajectory lives in ``BENCH_dsp.json`` (see
``benchmarks/README.md``); these pytest-benchmark entries give per-PR
relative numbers on the same paths.
"""

from __future__ import annotations

import pytest

from repro import REFERENCE_DDC
from repro.archs.fpga import RTLDDC
from repro.bench.runner import _build_step_sim
from repro.dsp.signals import quantize_to_adc, tone

N_BLOCK = 2688 * 32   # the 86k-sample reference bench input
N_CYCLE = 2688 * 2    # cycle-accurate oracle is ~70x slower: keep it short


@pytest.fixture(scope="module")
def adc_block():
    cfg = REFERENCE_DDC
    x = tone(N_BLOCK, cfg.nco_frequency_hz + 5e3, cfg.input_rate_hz, 0.8)
    return quantize_to_adc(x, 12)


def test_bench_sim_step_compiled(benchmark):
    sim = _build_step_sim()
    sim.compile()
    benchmark(sim.step, 1000)


def test_bench_sim_step_no_activity(benchmark):
    sim = _build_step_sim()
    sim.activity = False
    sim.compile()
    benchmark(sim.step, 1000)


def test_bench_rtl_ddc_cycle(benchmark, adc_block):
    rtl = RTLDDC()
    x = adc_block[:N_CYCLE]

    def run():
        rtl.reset()
        return rtl.run(x)

    res = benchmark(run)
    assert len(res.i) >= 1


def test_bench_rtl_ddc_block(benchmark, adc_block):
    rtl = RTLDDC()

    def run():
        rtl.reset()
        return rtl.run(adc_block, engine="block")

    res = benchmark(run)
    assert len(res.i) >= 1


def test_bench_rtl_ddc_block_no_activity(benchmark, adc_block):
    rtl = RTLDDC()

    def run():
        rtl.reset()
        return rtl.run(adc_block, engine="block", activity=False)

    res = benchmark(run)
    assert len(res.i) >= 1
