"""Regeneration benches: one per paper table (Tables 1-7).

Each bench times the full regeneration of a table from the models and
asserts the published *shape* (ordering / ratios), so the benchmark suite
doubles as the experiment harness: ``pytest benchmarks/ --benchmark-only``
re-derives every published artefact.
"""

from __future__ import annotations

import pytest

from repro.paper import (
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)


def test_bench_table1(benchmark):
    result = benchmark(table1)
    assert [r[0] for r in result.rows] == [p[0] for p in result.published]
    assert result.rows[1][2] == 16 and result.rows[2][2] == 21


def test_bench_table2(benchmark):
    result = benchmark(table2)
    assert result.rows[0][1] == "Up to 100 MSPS"
    assert "115mW" in result.rows[-1][1]


def test_bench_table3(benchmark):
    result = benchmark(lambda: table3(n_samples=2688))
    pct = {row[0]: float(row[2].rstrip(" %")) for row in result.rows}
    # Shape of Table 3: NCO and CIC2-integrating dominate, in that order.
    assert pct["NCO"] > pct["CIC2-integrating"] > pct["CIC5-integrating"]
    assert pct["NCO"] + pct["CIC2-integrating"] > 80
    assert pct["CIC5-cascading"] < 0.5
    assert pct["FIR125-poly-phase"] < 0.5


def test_bench_table4(benchmark, published):
    result = benchmark(table4)
    for row in result.rows:
        got_le = int(row[1].split("/")[0].strip().replace(",", ""))
        want = published["table4_le"][row[0]]
        assert abs(got_le - want) / want < 0.10


def test_bench_table5(benchmark, published):
    result = benchmark(table5)
    totals = [float(v.split()[0]) for v in result.rows[0][1:]]
    want = list(published["table5_total_mw"].values())
    for got, pub in zip(totals, want):
        assert got == pytest.approx(pub, rel=0.02)


def test_bench_table6(benchmark):
    result = benchmark(table6)
    rows = {r[0]: (r[1], float(r[2].rstrip("%"))) for r in result.rows}
    assert rows["NCO + CIC2 integrating"] == (3, 100.0)
    assert rows["CIC5 integrating"][1] == pytest.approx(25.0)
    assert rows["CIC2 cascading"][1] == pytest.approx(6.3, abs=0.2)


def test_bench_table7(benchmark, published):
    result = benchmark(table7)
    scaled = {
        r[0]: float(r[4].split()[0]) for r in result.rows
    }
    for arch, want in published["table7_scaled_mw"].items():
        assert scaled[arch] == pytest.approx(want, rel=0.05)
    # Ranking at 0.13 um: low-power ASIC < GC4016 < Montium < Cyclone II.
    assert (
        scaled["Customised Low Power DDC"]
        < scaled["TI GC4016"]
        < scaled["Montium TP"]
        < scaled["Altera Cyclone II"]
    )
