"""Benchmark-suite configuration."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def published():
    """Published values used by the regeneration benches for shape checks."""
    return {
        "table5_total_mw": {0.05: 120.9, 0.10: 141.4, 0.50: 305.3, 0.875: 458.9},
        "table4_le": {"EP1C3T100C6": 1656, "EP2C5T144C6": 906},
        "table7_scaled_mw": {
            "TI GC4016": 13.8,
            "Customised Low Power DDC": 8.7,
            "Montium TP": 38.7,
        },
    }
