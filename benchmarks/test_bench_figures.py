"""Regeneration benches for the paper's figures.

Structural figures (1-4, 8) are regenerated as executable artefacts;
Fig. 9 is the Montium schedule Gantt.  Each bench also runs the
executable payload so "the figure works", not just renders.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import REFERENCE_DDC
from repro.dsp.signals import tone
from repro.paper import figure1, figure2, figure3, figure4, figure8, figure9


def test_bench_figure1_chain(benchmark):
    """Fig. 1: run the full DDC chain the figure depicts."""
    from repro import DDC

    x = tone(2688 * 8, 10.005e6, REFERENCE_DDC.input_rate_hz, 0.5)

    def run():
        fig = figure1()
        ddc = DDC(fig.payload)
        return fig, ddc.process(x)

    fig, out = benchmark(run)
    assert "NCO" in fig.text
    assert len(out.baseband) == 8


def test_bench_figure2_cic2(benchmark, rng=np.random.default_rng(2)):
    """Fig. 2: the CIC2 payload filters a block correctly."""
    x = rng.normal(size=16 * 64)

    def run():
        fig = figure2()
        return fig, fig.payload.process(x)

    fig, y = benchmark(run)
    assert len(y) == 64


def test_bench_figure3_polyphase(benchmark):
    """Fig. 3: 5-tap decimate-by-5 polyphase filter."""
    x = np.ones(100)

    def run():
        fig = figure3()
        fig.payload.reset()
        return fig, fig.payload.process(x)

    fig, y = benchmark(run)
    assert len(y) == 20
    assert y[-1] == pytest.approx(1.0)  # unit-DC taps


def test_bench_figure4_gc4016(benchmark):
    """Fig. 4: one GC4016 channel processes a GSM-band burst."""
    from repro.dsp.signals import gsm_like_burst

    x = gsm_like_burst(256 * 40, 69.333e6, 10e6, seed=4)

    def run():
        fig = figure4()
        fig.payload.reset()
        return fig, fig.payload.process(x)

    fig, y = benchmark(run)
    assert fig.payload.total_decimation == 256
    assert len(y) == 40


def test_bench_figure8_alu_config(benchmark):
    """Fig. 8: the NCO+CIC2 ALU op exists with MAC + level-1 ADD."""
    from repro.archs.montium.alu import Level2Fn

    fig = benchmark(figure8)
    assert fig.payload.level2 is Level2Fn.MAC
    assert fig.payload.label == "nco_cic2_int"


def test_bench_figure9_schedule(benchmark):
    """Fig. 9: first-40-cycle Gantt with the published structure."""
    fig = benchmark(figure9)
    lines = fig.text.splitlines()
    alu4 = lines[4].split()[-1]
    assert alu4[0] == "2" and alu4[16] == "2"  # comb every 16 cycles
    assert set(lines[1].split()[-1]) == {"N"}  # ALU1 always busy
