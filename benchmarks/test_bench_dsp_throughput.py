"""Throughput benches of the DSP kernels.

Not a paper artefact, but the numbers a library user cares about: samples
per second each stage and the whole gold-model DDC sustain in this
implementation.
"""

from __future__ import annotations

import pytest

from repro import DDC, FixedDDC, REFERENCE_DDC
from repro.dsp.cic import CICDecimator, FixedCICDecimator
from repro.dsp.fir import PolyphaseDecimator
from repro.dsp.firdesign import reference_fir_taps
from repro.dsp.nco import NCO
from repro.dsp.signals import quantize_to_adc, tone

N = 2688 * 32  # ~86k input samples


@pytest.fixture(scope="module")
def tone_block():
    return tone(N, 10.005e6, REFERENCE_DDC.input_rate_hz, 0.8)


@pytest.fixture(scope="module")
def adc_block(tone_block):
    return quantize_to_adc(tone_block, 12)


def test_bench_nco_generate(benchmark):
    nco = NCO(REFERENCE_DDC.input_rate_hz, 10e6)
    benchmark(nco.generate, N)


def test_bench_cic2_float(benchmark, tone_block):
    cic = CICDecimator(2, 16)
    benchmark(cic.process, tone_block)


def test_bench_cic5_float(benchmark, tone_block):
    cic = CICDecimator(5, 21)
    benchmark(cic.process, tone_block[: N // 16])


def test_bench_cic2_fixed(benchmark, adc_block):
    cic = FixedCICDecimator(2, 16, input_width=12)
    benchmark(cic.process, adc_block)


def test_bench_polyphase_fir(benchmark, tone_block):
    fir = PolyphaseDecimator(reference_fir_taps(), 8)
    benchmark(fir.process, tone_block[: N // 336].astype(complex))


def test_bench_full_ddc_gold(benchmark, tone_block):
    ddc = DDC()
    result = benchmark(ddc.process, tone_block)
    assert len(result.baseband) >= 1


def test_bench_full_ddc_fixed(benchmark, adc_block):
    ddc = FixedDDC()
    i, q = benchmark(ddc.process, adc_block)
    assert len(i) >= 1
